#include "os/kernel.hh"

#include <algorithm>
#include <array>

#include "os/fault_handler.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
Kernel::serialize(sim::Serializer &s)
{
    s.section("kernel");
    rng.serialize(s);
    kernelExec->serialize(s);
    sched->serialize(s);
    fileSystem->serialize(s);
    blk->serialize(s);
    reverseMap->serialize(s);
    reclaim->serialize(s);
    faults->serialize(s);
    pcache.serialize(s);

    // Per-frame metadata: pointers become (file id, asid) pairs the
    // identically-booted restore target resolves back.
    std::uint64_t nf = framePages.size();
    s.check(nf, "frame count");
    for (auto &pg : framePages) {
        std::uint32_t fileId = pg.file ? pg.file->id() : ~0u;
        std::uint32_t asid = pg.as ? pg.as->id() : ~0u;
        s.io(fileId);
        s.io(asid);
        s.io(pg.index);
        s.io(pg.vaddr);
        auto flags = static_cast<std::uint8_t>(
            (pg.inUse << 0) | (pg.dirty << 1) | (pg.referenced << 2) |
            (pg.active << 3) | (pg.lruLinked << 4) |
            (pg.inPageCache << 5) | (pg.underWriteback << 6) |
            (pg.inSmuQueue << 7));
        s.io(flags);
        if (s.loading()) {
            pg.file = fileId == ~0u ? nullptr : fileSystem->byId(fileId);
            if (fileId != ~0u && !pg.file)
                throw sim::SerializeError(
                    "restore: frame references unknown file id");
            if (asid == ~0u) {
                pg.as = nullptr;
            } else {
                if (asid >= spaces.size())
                    throw sim::SerializeError(
                        "restore: frame references unknown asid");
                pg.as = spaces[asid].get();
            }
            pg.inUse = flags & (1 << 0);
            pg.dirty = flags & (1 << 1);
            pg.referenced = flags & (1 << 2);
            pg.active = flags & (1 << 3);
            pg.lruLinked = flags & (1 << 4);
            pg.inPageCache = flags & (1 << 5);
            pg.underWriteback = flags & (1 << 6);
            pg.inSmuQueue = flags & (1 << 7);
        }
        // Guarded so pageMode = off blobs keep the pre-huge-page
        // layout byte for byte.
        if (prm.pageMode != PageMode::off) {
            s.io(pg.order);
            s.io(pg.tail);
            s.io(pg.headPfn);
        }
    }

    std::uint64_t nas = spaces.size();
    s.check(nas, "address space count");
    for (auto &as : spaces)
        as->serialize(s);

    std::vector<std::pair<std::uint32_t, std::uint64_t>> wal(
        walDirtyBytes.begin(), walDirtyBytes.end());
    std::sort(wal.begin(), wal.end());
    s.io(wal);
    if (s.loading()) {
        walDirtyBytes.clear();
        walDirtyBytes.insert(wal.begin(), wal.end());
    }

    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (prm.sockets > 1)
        s.io(numaRrCursor);

    if (prm.pageMode != PageMode::off) {
        s.io(nThpFaults);
        s.io(nNapotPromotions);
        s.io(nNapotBreaks);
        s.io(nHugePromotions);
        s.io(nHugeSplits);
        s.io(nHugeReclaims);
    }

    stats().serialize(s);
}

Pfn
Kernel::allocFrameFor(unsigned core_id)
{
    if (prm.sockets <= 1)
        return pm.alloc();
    unsigned socket = prm.numaRoundRobin
                          ? static_cast<unsigned>(numaRrCursor++ %
                                                  prm.sockets)
                          : socketOfCore(core_id);
    return pm.alloc(socket);
}

Kernel::Kernel(sim::EventQueue &eq, const KernelParams &params,
               mem::PhysMem &pm, mem::CacheHierarchy &caches,
               std::vector<mem::BranchPredictor> &bps, sim::Rng rng)
    : sim::SimObject("kernel", eq), prm(params), pm(pm), rng(rng),
      statMajor(stats().counter("major_faults",
                                "faults requiring device I/O")),
      statMinor(stats().counter("minor_faults", "page-cache hit faults")),
      statSmuFallback(stats().counter(
          "smu_fallback_faults", "misses bounced from the SMU to the OS")),
      statMmapCalls(stats().counter("mmap_calls", "mmap() invocations")),
      statMunmapCalls(stats().counter("munmap_calls",
                                      "munmap() invocations")),
      statWalWrites(stats().counter("wal_write_ios",
                                    "asynchronous write I/Os cut")),
      statOomKills(stats().counter(
          "oom_kills", "threads killed on unreclaimable memory")),
      statFaultLatency(stats().histogram(
          "fault_latency_us", "OS-handled fault latency (us)", 0.5, 400))
{
    kernelExec = std::make_unique<KernelExec>(caches, bps, prm.cyclePeriod,
                                              this->rng.fork());
    sched = std::make_unique<Scheduler>(eq, prm.nLogical, prm.nPhysical,
                                        *kernelExec, prm.smtShare);
    fileSystem = std::make_unique<FileSystem>(this->rng.fork());
    blk = std::make_unique<BlockLayer>(eq, *sched);
    reverseMap = std::make_unique<Rmap>([this](AddressSpace &as, VAddr va) {
        if (shootdownFn)
            shootdownFn(as, va);
    });

    framePages.resize(pm.totalFrames());
    for (std::uint64_t i = 0; i < framePages.size(); ++i)
        framePages[i].pfn = i;
    pcache.reserve(framePages.size());

    auto alloc_frames = pm.totalFrames() - pm.reservedCount();
    auto low = static_cast<std::uint64_t>(
        prm.lowWatermarkFrac * static_cast<double>(alloc_frames));
    auto high = static_cast<std::uint64_t>(
        prm.highWatermarkFrac * static_cast<double>(alloc_frames));
    reclaim = std::make_unique<Reclaimer>(*this, prm.reclaimCore,
                                          prm.reclaimPeriod,
                                          std::max<std::uint64_t>(low, 8),
                                          std::max<std::uint64_t>(high, 16));
    sched->addThread(reclaim.get());

    faults = std::make_unique<FaultHandler>(*this);

    // LBA-augmented PTEs must track file-system block remapping
    // (copy-on-write / log-structured updates, Section IV-B).
    fileSystem->setRemapListener(
        [this](File &file, std::uint64_t index, Lba new_lba) {
            if (!file.lbaAugmentedMapping())
                return;
            for (auto &asp : spaces) {
                for (auto &vma : asp->vmas()) {
                    if (vma->file != &file || !vma->fastMmap)
                        continue;
                    if (index < vma->filePageOffset ||
                        index >= vma->filePageOffset + vma->numPages())
                        continue;
                    VAddr va = vma->start +
                               (index - vma->filePageOffset) * pageSize;
                    pte::Entry e = asp->pageTable().readPte(va);
                    if (pte::isLbaAugmented(e)) {
                        BlockDeviceId bdev = file.device();
                        asp->pageTable().writePte(
                            va, pte::makeLbaAugmented(bdev.sid, bdev.dev,
                                                      new_lba, vma->prot));
                    }
                }
            }
        });
}

Kernel::~Kernel() = default;

void
Kernel::attachDevice(ssd::SsdDevice *dev, BlockDeviceId bdev)
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            fatal("kernel: device ", bdev.sid, ":", bdev.dev,
                  " attached twice");
    }
    unsigned idx = blk->attachDevice(dev);
    attached.push_back(AttachedDevice{dev, bdev, idx});
}

unsigned
Kernel::deviceIndexOf(BlockDeviceId bdev) const
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            return a.blkIndex;
    }
    panic("kernel: unknown block device ", bdev.sid, ":", bdev.dev);
}

ssd::SsdDevice &
Kernel::deviceOf(BlockDeviceId bdev)
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            return *a.dev;
    }
    panic("kernel: unknown block device ", bdev.sid, ":", bdev.dev);
}

Page &
Kernel::page(Pfn pfn)
{
    if (pfn >= framePages.size())
        panic("kernel: pfn ", pfn, " out of range");
    return framePages[pfn];
}

AddressSpace *
Kernel::createAddressSpace()
{
    spaces.push_back(std::make_unique<AddressSpace>(
        static_cast<std::uint32_t>(spaces.size())));
    return spaces.back().get();
}

void
Kernel::setShootdownFn(Rmap::ShootdownFn fn)
{
    shootdownFn = std::move(fn);
}

void
Kernel::mmapFile(Thread &t, AddressSpace &as, File &file, bool fast_mmap,
                 std::function<void(Vma *)> done)
{
    ++statMmapCalls;
    Vma *vma = as.addVma(&file, 0, file.numPages(), fast_mmap,
                         pte::writableBit | pte::userBit);

    unsigned phys = sched->physCoreOf(t.core());
    Tick dur = kernelExec->run(phys, phases::syscallEntryExit);

    if (fast_mmap) {
        std::uint64_t populated = populateFastVma(as, file, vma);
        dur += kernelExec->runBatch(phys, phases::mmapSetupPerPage,
                                    populated);
    }

    eq.postIn(dur, [done = std::move(done), vma] { done(vma); },
                        "kernel.mmap");
}

std::uint64_t
Kernel::populateFastVma(AddressSpace &as, File &file, Vma *vma)
{
    file.markLbaAugmented();
    BlockDeviceId bdev = file.device();
    if (pcache.empty()) {
        // Nothing is resident, so every per-page lookup below would
        // miss: account them in bulk and run-fill the tree one leaf
        // table at a time. Same PTEs, same table-allocation order,
        // same page-cache counters — only the host cost of a
        // million-page mmap sweep changes.
        std::uint64_t n = vma->numPages();
        pcache.noteMissRun(n);
        if (vma->filePageOffset + n > file.numPages())
            panic("populateFastVma: vma extends past EOF of '",
                  file.name(), "'");
        const Lba *lba = file.lbaTable() + vma->filePageOffset;
        as.pageTable().writePteRun(
            vma->start, n, [&](std::uint64_t i) {
                return pte::makeLbaAugmented(bdev.sid, bdev.dev, lba[i],
                                             vma->prot);
            });
        return n;
    }
    std::uint64_t populated = 0;
    for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
        VAddr va = vma->start + i * pageSize;
        std::uint64_t idx = vma->filePageOffset + i;
        Pfn cached = pcache.lookup(file, idx);
        if (cached != PageCache::noFrame) {
            // Cached page: link it directly (Section IV-B).
            Page &pg = page(cached);
            if (pg.as == nullptr) {
                reverseMap->setMapping(pg, as, va);
                as.pageTable().writePte(
                    va, pte::makePresent(cached, vma->prot));
            }
        } else {
            as.pageTable().writePte(
                va, pte::makeLbaAugmented(bdev.sid, bdev.dev,
                                          file.lbaOf(idx), vma->prot));
        }
        ++populated;
    }
    return populated;
}

Vma *
Kernel::mmapFileSync(AddressSpace &as, File &file, bool fast_mmap)
{
    Vma *vma = as.addVma(&file, 0, file.numPages(), fast_mmap,
                         pte::writableBit | pte::userBit);
    if (fast_mmap)
        populateFastVma(as, file, vma);
    return vma;
}

Vma *
Kernel::mmapAnonSync(AddressSpace &as, std::uint64_t n_pages,
                     bool fast_mmap)
{
    Vma *vma = as.addVma(nullptr, 0, n_pages, fast_mmap,
                         pte::writableBit | pte::userBit);
    if (fast_mmap) {
        // Mark every PTE with the reserved zero-fill LBA: the SMU
        // allocates and installs a zeroed frame without touching any
        // device (Section V).
        const pte::Entry e =
            pte::makeLbaAugmented(0, 0, pte::zeroFillLba, vma->prot);
        as.pageTable().writePteRun(vma->start, n_pages,
                                   [e](std::uint64_t) { return e; });
    }
    return vma;
}

void
Kernel::munmapVma(Thread &t, AddressSpace &as, Vma *vma,
                  std::function<void()> done)
{
    ++statMunmapCalls;
    auto teardown = [this, &t, &as, vma, done = std::move(done)] {
        unsigned phys = sched->physCoreOf(t.core());
        Tick dur = kernelExec->run(phys, phases::syscallEntryExit);
        // Huge leaves in the range are demoted first: the per-PTE
        // teardown below never descends through a live 2 MB leaf.
        if (prm.pageMode != PageMode::off) {
            std::vector<VAddr> leaves;
            as.pageTable().forEachHugeLeaf(
                vma->start, vma->end, [&](VAddr va, EntryRef) {
                    // Leaves are whole-window mappings inside one VMA;
                    // the aligned-down scan start may touch a
                    // neighbouring area's leaf.
                    if (va >= vma->start)
                        leaves.push_back(va);
                });
            for (VAddr va : leaves)
                demoteHugePage(as, va);
        }
        std::uint64_t touched = 0;
        as.pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr, EntryRef ref) {
                pte::Entry e = ref.value();
                if (pte::isPresent(e)) {
                    Page &pg = page(pte::pfnOf(e));
                    if (pg.as == &as)
                        reverseMap->clearMapping(pg);
                    // Pages stay in the page cache/LRU for reuse.
                }
                ref.write(0);
                ++touched;
            });
        dur += kernelExec->runBatch(phys, phases::mmapSetupPerPage,
                                    touched);
        if (hwdpHooks.vmaUnmapped)
            hwdpHooks.vmaUnmapped(vma);
        as.removeVma(vma);
        eq.postIn(dur, done, "kernel.munmap");
    };

    // Races between SMU page-miss handling and PTE unmapping are
    // prevented by waiting on outstanding misses (the SMU barrier),
    // then synchronising metadata, then tearing down (Section IV-C).
    auto sync_then_teardown = [this, &as, vma, &t,
                               teardown = std::move(teardown)] {
        if (hwdpHooks.syncMetadata && vma->fastMmap) {
            hwdpHooks.syncMetadata(as, vma->start, vma->end, t.core(),
                                   teardown);
        } else {
            teardown();
        }
    };
    if (hwdpHooks.smuBarrier && vma->fastMmap)
        hwdpHooks.smuBarrier(sync_then_teardown);
    else
        sync_then_teardown();
}

void
Kernel::msyncVma(Thread &t, Vma *vma, std::function<void()> done)
{
    AddressSpace *as = nullptr;
    for (auto &asp : spaces) {
        if (asp->findVma(vma->start) == vma)
            as = asp.get();
    }
    if (!as)
        panic("msync: VMA not found in any address space");

    auto writeback = [this, &t, vma, as, done = std::move(done)] {
        unsigned core = t.core();
        unsigned phys = sched->physCoreOf(core);
        Tick dur = kernelExec->run(phys, phases::syscallEntryExit);

        auto remaining = std::make_shared<std::uint64_t>(0);
        auto finished = std::make_shared<bool>(false);
        auto maybe_done = [remaining, finished,
                           done = std::move(done)]() mutable {
            if (*finished && *remaining == 0)
                done();
        };

        auto writebackPage = [&](Page &pg, bool pte_dirty) {
            if (!(pg.dirty || pte_dirty) || pg.underWriteback)
                return;
            pg.underWriteback = true;
            kernelExec->run(phys, phases::writebackSubmit);
            ++*remaining;
            unsigned dev = deviceIndexOf(vma->file->device());
            blk->submit(core, dev, vma->file->lbaOf(pg.index), true,
                        BlockLayer::IoClass::writeback,
                        [this, &pg, remaining, maybe_done]() mutable {
                            pg.underWriteback = false;
                            pg.dirty = false;
                            --*remaining;
                            maybe_done();
                        });
        };

        as->pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr, EntryRef ref) {
                pte::Entry e = ref.value();
                if (!pte::isPresent(e))
                    return;
                writebackPage(page(pte::pfnOf(e)), pte::isDirty(e));
            });
        // forEachPte never descends through a 2 MB leaf; writes inside
        // one are tracked per 4 KB page (Page.dirty), so the leaf
        // windows get their own pass without demoting anything.
        if (prm.pageMode != PageMode::off) {
            as->pageTable().forEachHugeLeaf(
                vma->start, vma->end, [&](VAddr va, EntryRef ref) {
                    if (!vma->contains(va))
                        return;
                    Pfn head = pte::pfnOf(ref.value());
                    for (std::uint64_t i = 0; i < pmdLeafPages; ++i)
                        writebackPage(page(head + i), false);
                });
        }

        eq.postIn(dur,
                            [finished, maybe_done]() mutable {
                                *finished = true;
                                maybe_done();
                            },
                            "kernel.msync");
    };

    // msync must observe consistent OS metadata: sync first (IV-C).
    if (hwdpHooks.syncMetadata && vma->fastMmap)
        hwdpHooks.syncMetadata(*as, vma->start, vma->end, t.core(),
                               writeback);
    else
        writeback();
}

void
Kernel::writeFile(Thread &t, File &file, std::uint64_t page_index,
                  std::uint64_t bytes, std::function<void()> done)
{
    unsigned core = t.core();
    unsigned phys = sched->physCoreOf(core);
    Tick dur = kernelExec->run(phys, phases::syscallEntryExit);
    dur += kernelExec->run(phys, phases::writeSyscall);

    std::uint64_t &dirty = walDirtyBytes[file.id()];
    dirty += bytes;
    std::uint64_t chunk = prm.writebackChunkPages * pageSize;
    while (dirty >= chunk) {
        dirty -= chunk;
        ++statWalWrites;
        // Background writeback: asynchronous, lighter completion.
        Lba lba = file.lbaOf(page_index % file.numPages());
        blk->submit(core, deviceIndexOf(file.device()), lba, true,
                    BlockLayer::IoClass::writeback, [] {});
    }

    eq.postIn(dur, std::move(done), "kernel.write");
}

void
Kernel::forkRevert(AddressSpace &as)
{
    // fork(): shared file pages across processes are unsupported, so
    // all LBA-augmented PTEs revert to OS-handled ones and resident
    // hardware-handled PTEs are synchronised immediately (Section V).
    for (auto &vma : as.vmas()) {
        if (!vma->fastMmap)
            continue;
        as.pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr va, EntryRef ref) {
                pte::Entry e = ref.value();
                if (pte::isLbaAugmented(e)) {
                    ref.write(0); // plain non-present: OS handles it
                } else if (pte::needsMetadataSync(e)) {
                    syncHardwareHandledPte(as, va, ref);
                }
            });
        vma->fastMmap = false;
    }
}

void
Kernel::handlePageFault(Thread &t, AddressSpace &as, VAddr vaddr,
                        bool is_write, bool smu_fallback,
                        std::function<void()> resume)
{
    faults->handle(t, as, vaddr, is_write, smu_fallback,
                   std::move(resume));
}

void
Kernel::installPage(AddressSpace &as, Vma &vma, VAddr vaddr, Pfn pfn,
                    bool synced)
{
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.file = vma.file;
    pg.index = vma.fileIndexOf(vaddr);
    pg.referenced = true;
    reverseMap->setMapping(pg, as, vaddr);
    as.pageTable().writePte(vaddr,
                            pte::makePresent(pfn, vma.prot, !synced));
    if (synced) {
        if (vma.file) {
            pcache.insert(*vma.file, pg.index, pfn);
            pg.inPageCache = true;
        }
        reclaim->lru().insertInactive(pg);
        if (prm.pageMode == PageMode::napot ||
            prm.pageMode == PageMode::coalesce)
            maybePromoteNapot(as, vaddr);
    } else {
        as.pageTable().markUpperLba(vaddr);
    }
}

void
Kernel::installHardwareHandled(AddressSpace &as, Vma &vma, VAddr vaddr,
                               Pfn pfn)
{
    // Only what the hardware writes: PTE (present, LBA bit preserved)
    // and the upper-level LBA bits. OS metadata stays stale until
    // kpted visits this PTE.
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.inSmuQueue = false;
    as.pageTable().writePte(vaddr,
                            pte::makePresent(pfn, vma.prot, true));
    as.pageTable().markUpperLba(vaddr);
}

void
Kernel::syncHardwareHandledPte(AddressSpace &as, VAddr vaddr,
                               EntryRef ref)
{
    pte::Entry e = ref.value();
    if (!pte::needsMetadataSync(e))
        panic("syncHardwareHandledPte: PTE not in hardware-handled state");

    Vma *vma = as.findVma(vaddr);
    if (!vma)
        panic("syncHardwareHandledPte: no VMA at ", vaddr);

    Pfn pfn = pte::pfnOf(e);
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.file = vma->file;
    pg.index = vma->fileIndexOf(vaddr);
    pg.referenced = true;
    if (pg.as == nullptr)
        reverseMap->setMapping(pg, as, vaddr);
    if (vma->file && !pg.inPageCache) {
        pcache.insert(*vma->file, pg.index, pfn);
        pg.inPageCache = true;
    }
    if (!pg.lruLinked)
        reclaim->lru().insertInactive(pg);
    ref.write(pte::clearLbaBit(e));
    if (pteSyncFn)
        pteSyncFn(as, vaddr);
    // HWDP areas keep 4 KB fault granularity but gain reach: a freshly
    // synchronised page may complete a contiguous 64 KB window.
    if (prm.pageMode == PageMode::napot ||
        prm.pageMode == PageMode::coalesce)
        maybePromoteNapot(as, vaddr);
}

// ---- Huge pages and translation reach (pageMode != off) ----------------

VAddr
Kernel::hugeFaultWindow(AddressSpace &as, Vma &vma, VAddr vaddr)
{
    constexpr VAddr span = pmdLeafPages << pageShift;
    VAddr win = vaddr & ~(span - 1);
    if (win < vma.start || win + span > vma.end)
        return invalidVaddr;
    if (auto ref = as.pageTable().hugeLeafRef(win, false);
        ref.valid() && pte::isHugeLeaf(ref.value()))
        return invalidVaddr;
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i) {
        VAddr va = win + i * pageSize;
        // Any armed PTE (present, LBA-augmented, ...) disqualifies the
        // window, as does a cached copy of one of its file pages.
        if (as.pageTable().readPte(va) != 0)
            return invalidVaddr;
        if (vma.file &&
            pcache.lookup(*vma.file, vma.fileIndexOf(va)) !=
                PageCache::noFrame)
            return invalidVaddr;
    }
    return win;
}

Pfn
Kernel::allocContigFor(unsigned core_id)
{
    unsigned socket = prm.sockets <= 1 ? 0 : socketOfCore(core_id);
    return pm.allocContig(socket, pmdLeafShift);
}

void
Kernel::installHugePage(AddressSpace &as, Vma &vma, VAddr win, Pfn head,
                        VAddr fault_va, bool write)
{
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i) {
        VAddr va = win + i * pageSize;
        Page &pg = page(head + i);
        pg.inUse = true;
        pg.file = vma.file;
        pg.index = vma.fileIndexOf(va);
        pg.referenced = true;
        reverseMap->setMapping(pg, as, va);
        if (i == 0) {
            pg.order = pmdLeafShift;
        } else {
            pg.tail = true;
            pg.headPfn = head;
        }
        if (vma.file) {
            pcache.insert(*vma.file, pg.index, head + i);
            pg.inPageCache = true;
        }
    }
    // Only the head rides the LRU: the unit ages and reclaims as one.
    reclaim->lru().insertInactive(page(head));
    if (write)
        page(head + ((fault_va - win) >> pageShift)).dirty = true;
    as.pageTable().writeHugeLeaf(win, pte::makeHugeLeaf(head, vma.prot));
    ++nThpFaults;
}

void
Kernel::demoteHugePage(AddressSpace &as, VAddr vaddr)
{
    constexpr VAddr span = pmdLeafPages << pageShift;
    VAddr win = vaddr & ~(span - 1);
    EntryRef ref = as.pageTable().hugeLeafRef(win, false);
    if (!ref.valid() || !pte::isHugeLeaf(ref.value()))
        panic("demoteHugePage: no 2 MB leaf at ", win);
    Pfn head = pte::pfnOf(ref.value());
    as.pageTable().splitHugeLeaf(win);
    page(head).order = 0;
    for (std::uint64_t i = 1; i < pmdLeafPages; ++i) {
        Page &pg = page(head + i);
        pg.tail = false;
        pg.headPfn = 0;
        // Tails become ordinary pages and must age like them.
        if (!pg.lruLinked)
            reclaim->lru().insertInactive(pg);
    }
    ++nHugeSplits;
    // Same frames before and after the split, so a straggler hitting a
    // stale wide entry still reads the right data; the staleWideTlb
    // fault site exploits exactly this to delay the broadcast.
    shootdownRange(as, win, pmdLeafPages, true);
}

void
Kernel::reclaimHugeUnit(Page &head)
{
    if (!head.isCompoundHead() || head.as == nullptr)
        panic("reclaimHugeUnit: page ", head.pfn, " is not a mapped head");
    AddressSpace &as = *head.as;
    VAddr win = head.vaddr;
    EntryRef ref = as.pageTable().hugeLeafRef(win, false);
    if (!ref.valid() || !pte::isHugeLeaf(ref.value()))
        panic("reclaimHugeUnit: no 2 MB leaf at ", win);
    Pfn base = pte::pfnOf(ref.value());
    // One unmap for the whole unit: the entry reverts to a table
    // pointer over the kept (zeroed) child table.
    ref.write(pte::presentBit);
    // Never delayable: the frames free right below.
    shootdownRange(as, win, pmdLeafPages, false);
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i) {
        Page &pg = page(base + i);
        if (pg.lruLinked)
            reclaim->lru().remove(pg);
        if (pg.inPageCache && pg.file)
            pcache.remove(*pg.file, pg.index);
        Pfn pfn = pg.pfn;
        pg.resetMetadata();
        pg.pfn = pfn;
        pm.free(pfn);
    }
    ++nHugeReclaims;
}

bool
Kernel::hugeWindowPromotable(AddressSpace &as, Vma &vma, VAddr win)
{
    constexpr VAddr span = pmdLeafPages << pageShift;
    if (win % span != 0 || win < vma.start || win + span > vma.end)
        return false;
    if (auto ref = as.pageTable().hugeLeafRef(win, false);
        ref.valid() && pte::isHugeLeaf(ref.value()))
        return false;
    pte::Entry first = as.pageTable().readPte(win);
    if (!pte::isPresent(first) || pte::hasLbaBit(first))
        return false;
    Pfn base = pte::pfnOf(first);
    if (base % pmdLeafPages != 0)
        return false;
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i) {
        pte::Entry e = as.pageTable().readPte(win + i * pageSize);
        if (!pte::isPresent(e) || pte::hasLbaBit(e) ||
            pte::pfnOf(e) != base + i)
            return false;
        Page &pg = page(base + i);
        if (!pg.inUse || pg.underWriteback || pg.inSmuQueue ||
            pg.as != &as || pg.vaddr != win + i * pageSize ||
            pg.order != 0 || pg.tail)
            return false;
    }
    return true;
}

bool
Kernel::promoteWindowHuge(AddressSpace &as, Vma &vma, VAddr win)
{
    if (!hugeWindowPromotable(as, vma, win))
        return false;
    Pfn base = pte::pfnOf(as.pageTable().readPte(win));
    bool accessed = false;
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i)
        if (pte::isAccessed(as.pageTable().readPte(win + i * pageSize)))
            accessed = true;

    Page &head = page(base);
    head.order = pmdLeafShift;
    for (std::uint64_t i = 1; i < pmdLeafPages; ++i) {
        Page &pg = page(base + i);
        pg.tail = true;
        pg.headPfn = base;
        if (pg.lruLinked)
            reclaim->lru().remove(pg);
    }
    if (!head.lruLinked)
        reclaim->lru().insertInactive(head);
    pte::Entry leaf = pte::makeHugeLeaf(base, vma.prot);
    if (accessed)
        leaf |= pte::accessedBit;
    as.pageTable().writeHugeLeaf(win, leaf);
    ++nHugePromotions;
    // The 4 KB (and NAPOT) entries the window used to fill the TLB
    // with still translate correctly — same frames — but they would
    // starve the wide entry forever; broadcast so walks reload it.
    shootdownRange(as, win, pmdLeafPages, true);
    return true;
}

void
Kernel::maybePromoteNapot(AddressSpace &as, VAddr vaddr)
{
    constexpr VAddr span = napotPages << pageShift;
    VAddr win = vaddr & ~(span - 1);
    Vma *vma = as.findVma(vaddr);
    if (!vma || win < vma->start || win + span > vma->end)
        return;
    std::array<EntryRef, napotPages> refs;
    Pfn base = 0;
    for (std::uint64_t i = 0; i < napotPages; ++i) {
        WalkRefs wr = as.pageTable().walkRefs(win + i * pageSize, false);
        if (!wr.pte.valid())
            return;
        pte::Entry e = wr.pte.value();
        if (!pte::isPresent(e) || pte::hasLbaBit(e))
            return;
        if (pte::hasNapotBit(e))
            return; // stamping is all-or-nothing per window
        if (i == 0) {
            base = pte::pfnOf(e);
            if (base % napotPages != 0)
                return;
        } else if (pte::pfnOf(e) != base + i) {
            return;
        }
        refs[i] = wr.pte;
    }
    // Promotion needs no shootdown: every covered VPN still maps to
    // the same frame, the TLB merely gains reach on the next walk.
    for (auto &r : refs)
        r.write(pte::setNapotBit(r.value()));
    ++nNapotPromotions;
}

void
Kernel::breakNapotRun(AddressSpace &as, VAddr vaddr)
{
    constexpr VAddr span = napotPages << pageShift;
    VAddr win = vaddr & ~(span - 1);
    bool any = false;
    for (std::uint64_t i = 0; i < napotPages; ++i) {
        WalkRefs wr = as.pageTable().walkRefs(win + i * pageSize, false);
        if (!wr.pte.valid())
            continue;
        pte::Entry e = wr.pte.value();
        if (pte::hasNapotBit(e)) {
            wr.pte.write(pte::clearNapotBit(e));
            any = true;
        }
    }
    if (!any)
        return;
    ++nNapotBreaks;
    // Demotion must kill resident wide entries before a member frame
    // is remapped — this is the correctness-critical direction, so it
    // is never delayable.
    shootdownRange(as, win, napotPages, false);
}

void
Kernel::freePage(Page &pg)
{
    if (!pg.inUse)
        panic("freePage: page ", pg.pfn, " not in use");
    if (pg.lruLinked)
        reclaim->lru().remove(pg);
    if (pg.inPageCache && pg.file)
        pcache.remove(*pg.file, pg.index);
    Pfn pfn = pg.pfn;
    pg.resetMetadata();
    pg.pfn = pfn;
    pm.free(pfn);
}

} // namespace hwdp::os

/**
 * @file
 * Engine microbenchmarks (google-benchmark): the hot paths the
 * figure benches lean on — event queue throughput, PMSHR CAM lookup,
 * cache tag-array access, zipfian key generation and page-table
 * walks.
 */

#include <benchmark/benchmark.h>

#include "core/pmshr.hh"
#include "mem/cache_array.hh"
#include "os/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workloads/key_chooser.hh"

using namespace hwdp;

namespace {

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    sim::EventQueue eq;
    class Noop : public sim::Event
    {
      public:
        void process() override {}
    } ev;
    Tick t = 0;
    for (auto _ : state) {
        eq.schedule(&ev, ++t);
        eq.step();
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_EventQueueFanout(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1024; ++i)
            eq.scheduleLambda(static_cast<Tick>(i + 1), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueueFanout);

void
BM_PmshrLookup(benchmark::State &state)
{
    core::Pmshr pmshr(static_cast<unsigned>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i)
        pmshr.allocate(0x1000 + i * 8);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pmshr.lookup(0x1000 + (i++ % state.range(0)) * 8));
    }
}
BENCHMARK(BM_PmshrLookup)->Arg(8)->Arg(32)->Arg(128);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    mem::CacheArray cache("bench", 32 * 1024, 8);
    sim::Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.range(1 << 20) * 64));
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_ZipfianNext(benchmark::State &state)
{
    workloads::ZipfianChooser zipf(1 << 20);
    sim::Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng, 1 << 20));
}
BENCHMARK(BM_ZipfianNext);

void
BM_PageTableWalkRefs(benchmark::State &state)
{
    os::PageTable pt;
    sim::Rng rng(13);
    for (std::uint64_t i = 0; i < 4096; ++i)
        pt.writePte(i * pageSize, os::pte::makePresent(i, 0));
    for (auto _ : state) {
        VAddr va = rng.range(4096) * pageSize;
        benchmark::DoNotOptimize(pt.walkRefs(va, false));
    }
}
BENCHMARK(BM_PageTableWalkRefs);

void
BM_KptedGuidedScan(benchmark::State &state)
{
    os::PageTable pt;
    // 64Ki PTEs with a sparse set of hardware-handled entries.
    sim::Rng rng(17);
    for (std::uint64_t i = 0; i < 65536; ++i)
        pt.writePte(i * pageSize,
                    os::pte::makeLbaAugmented(0, 0, i, 0));
    for (int i = 0; i < 128; ++i) {
        VAddr va = rng.range(65536) * pageSize;
        auto refs = pt.walkRefs(va, true);
        refs.pte.write(os::pte::makePresent(1, 0, true));
        pt.markUpperLba(va);
    }
    for (auto _ : state) {
        state.PauseTiming();
        // Re-mark a fresh batch so each iteration has work.
        for (int i = 0; i < 128; ++i) {
            VAddr va = rng.range(65536) * pageSize;
            auto refs = pt.walkRefs(va, true);
            refs.pte.write(os::pte::makePresent(1, 0, true));
            pt.markUpperLba(va);
        }
        state.ResumeTiming();
        std::uint64_t visited = 0;
        pt.scanUnsynced(0, 65536 * pageSize,
                        [](VAddr, os::EntryRef ref) {
                            ref.write(os::pte::clearLbaBit(ref.value()));
                        },
                        &visited);
        benchmark::DoNotOptimize(visited);
    }
}
BENCHMARK(BM_KptedGuidedScan);

} // namespace

BENCHMARK_MAIN();

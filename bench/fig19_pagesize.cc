/**
 * @file
 * Translation reach sweep: page mode x paging mode on heavy FIO, the
 * cross-mode identity gate, and the host-speed multiplier lanes
 * behind BENCH_hugepages.json.
 *
 * The paper's machine translates 4 KB at a time; this bench measures
 * what the three reach modes buy on top (MachineConfig::pageMode):
 * 2 MB THP turns 512 demand faults into one, NAPOT gives the TLB
 * 64 KB reach without changing fault granularity, and coalesce adds
 * the background promotion daemon. Two claims are checked:
 *
 *  - identity: every page mode leaves the same user-visible data
 *    (dirty-page set, app ops) as pageMode=off for every paging mode —
 *    the bench exits nonzero on divergence, same contract as the
 *    differential suite;
 *  - host speed: THP is also a *simulator* optimisation — one 2 MB
 *    fault event replaces 512 4 KB fault walks through the event
 *    loop, so the fig13-style heavy FIO sweep runs faster on the
 *    host. Sequential lanes (every window fully used) must clear
 *    1.3x process-CPU speedup over the same-host off baseline;
 *    random lanes are recorded honestly (~1x: most windows are
 *    touched once before reclaim).
 *
 * Timing follows bench/host_timing.hh: median of N repeats of
 * steal-immune getrusage process CPU, wall clock beside it.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/host_timing.hh"
#include "testing/machine_differ.hh"

using namespace hwdp;
using metrics::Table;

namespace {

const PageMode pageModes[] = {PageMode::off, PageMode::thp,
                              PageMode::napot, PageMode::coalesce};
const system::PagingMode pagingModes[] = {system::PagingMode::osdp,
                                          system::PagingMode::hwdp,
                                          system::PagingMode::swsmu};

const char *
pmShort(PageMode pm)
{
    switch (pm) {
      case PageMode::off: return "off";
      case PageMode::thp: return "thp";
      case PageMode::napot: return "napot";
      case PageMode::coalesce: return "coalesce";
    }
    return "?";
}

system::MachineConfig
reachConfig(system::PagingMode mode, PageMode pm,
            std::uint64_t mem_frames)
{
    system::MachineConfig cfg = bench::paperConfig(mode);
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = mem_frames;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.pageMode = pm;
    return cfg;
}

struct SweepPoint
{
    double opsPerSec = 0;
    double userIpc = 0;
    std::uint64_t thpFaults = 0;
    std::uint64_t napotPromotions = 0;
    std::uint64_t wideHits = 0;
    std::uint64_t hugeReclaims = 0;
};

/** One heavy FIO run: dataset 2x memory, reclaim active throughout. */
SweepPoint
runSweepPoint(system::PagingMode mode, PageMode pm, bool sequential,
              std::uint64_t ops)
{
    auto cfg = reachConfig(mode, pm, 8 * 1024);
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, ops, 300,
                                                        sequential);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(120.0));

    SweepPoint p;
    p.opsPerSec = sys.throughputOpsPerSec();
    p.userIpc = sys.aggregateUserIpc();
    p.thpFaults = sys.kernel().thpFaults();
    p.napotPromotions = sys.kernel().napotPromotions();
    p.wideHits = sys.totalTlbWideHits();
    p.hugeReclaims = sys.kernel().hugeReclaims();
    return p;
}

/**
 * YCSB-A over the mmap'ed KV store: a *revisiting* workload, so wide
 * entries installed by promotion actually serve later accesses (a
 * one-pass scan never returns to a promoted window).
 */
SweepPoint
runKvSweepPoint(system::PagingMode mode, PageMode pm, std::uint64_t ops)
{
    auto cfg = reachConfig(mode, pm, 32 * 1024);
    system::System sys(cfg);
    auto mf = sys.mapDataset("data", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    workloads::KvStore store(mf.vma, wal, 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', store, ops);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(120.0));

    SweepPoint p;
    p.opsPerSec = sys.throughputOpsPerSec();
    p.userIpc = sys.aggregateUserIpc();
    p.thpFaults = sys.kernel().thpFaults();
    p.napotPromotions = sys.kernel().napotPromotions();
    p.wideHits = sys.totalTlbWideHits();
    p.hugeReclaims = sys.kernel().hugeReclaims();
    return p;
}

/** Pressure-free identity run; returns the user-data snapshot. */
testing::MachineState
runIdentity(system::PagingMode mode, PageMode pm)
{
    auto cfg = reachConfig(mode, pm, 32 * 1024);
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(120.0));
    testing::quiesce(sys);
    return testing::snapshot(sys, pmShort(pm));
}

struct HostLane
{
    bench::TimedRun timing;
    double simOpsPerSec = 0;
    double simUserIpc = 0;
};

/**
 * The fig13-style heavy lane, timed on the host: one FIO thread
 * streaming a 64k-page dataset through 32k frames of DRAM, every op
 * a demand miss in off mode.
 */
HostLane
runHostLane(PageMode pm, bool sequential, std::uint64_t ops,
            unsigned repeats)
{
    HostLane lane;
    lane.timing = bench::medianOfRuns(repeats, [&] {
        auto cfg = reachConfig(system::PagingMode::osdp, pm, 32 * 1024);
        system::System sys(cfg);
        auto mf = sys.mapDataset("fio.dat", 64 * 1024);
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(
            mf.vma, ops, 300, sequential);
        sys.addThread(*wl, 0, *mf.as);
        sys.runUntilThreadsDone(seconds(240.0));
        lane.simOpsPerSec = sys.throughputOpsPerSec();
        lane.simUserIpc = sys.aggregateUserIpc();
    });
    return lane;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned repeats = 3;
    if (argc > 1)
        repeats = static_cast<unsigned>(std::atoi(argv[1]));
    if (repeats == 0)
        repeats = 1;

    metrics::banner(
        "Translation reach: page mode x paging mode sweep",
        "2 MB THP + 64 KB NAPOT + kcoalesced as a speed multiplier");

    // ---- 1. Simulated sweep: page mode x paging mode ------------------
    // Sequential FIO: every 2 MB window is fully used, so THP's
    // one-fault-per-window and NAPOT's completed 16-page runs both
    // engage (random one-pass runs never complete a window).
    Table t({"paging / page mode", "ops/s", "user IPC", "thp faults",
             "napot promos", "wide hits", "huge reclaims"});
    for (auto mode : pagingModes) {
        for (auto pm : pageModes) {
            SweepPoint p = runSweepPoint(mode, pm, true, 3000);
            t.addRow({std::string(system::pagingModeName(mode)) + " / " +
                          pmShort(pm),
                      Table::num(p.opsPerSec, 0),
                      Table::num(p.userIpc, 3),
                      std::to_string(p.thpFaults),
                      std::to_string(p.napotPromotions),
                      std::to_string(p.wideHits),
                      std::to_string(p.hugeReclaims)});
        }
    }
    t.print();

    // YCSB-A revisits hot keys, so the wide-hits column shows NAPOT
    // and coalesce reach actually serving repeated lookups (the FIO
    // scan above mostly pays for promotion and moves on).
    std::printf("\n");
    Table k({"paging / page mode (ycsb-a)", "ops/s", "user IPC",
             "thp faults", "napot promos", "wide hits"});
    for (auto mode : pagingModes) {
        for (auto pm : pageModes) {
            SweepPoint p = runKvSweepPoint(mode, pm, 2500);
            k.addRow({std::string(system::pagingModeName(mode)) + " / " +
                          pmShort(pm),
                      Table::num(p.opsPerSec, 0),
                      Table::num(p.userIpc, 3),
                      std::to_string(p.thpFaults),
                      std::to_string(p.napotPromotions),
                      std::to_string(p.wideHits)});
        }
    }
    k.print();

    // ---- 2. Identity gate ---------------------------------------------
    bool identical = true;
    for (auto mode : pagingModes) {
        auto base = runIdentity(mode, PageMode::off);
        for (auto pm : {PageMode::thp, PageMode::napot,
                        PageMode::coalesce}) {
            testing::DiffOptions opt;
            opt.userDataOnly = true;
            auto d = testing::diff(runIdentity(mode, pm), base, opt);
            if (!d.equivalent) {
                identical = false;
                std::printf("IDENTITY VIOLATION %s/%s:\n%s\n",
                            system::pagingModeName(mode), pmShort(pm),
                            d.report.c_str());
            }
        }
    }
    std::printf("\nuser-visible data identical to off across all "
                "modes: %s\n",
                identical ? "yes" : "NO");

    // ---- 3. Host-speed lanes ------------------------------------------
    std::printf("\nhost-speed lanes (median of %u, getrusage CPU):\n",
                repeats);
    HostLane offSeq = runHostLane(PageMode::off, true, 48000, repeats);
    HostLane thpSeq = runHostLane(PageMode::thp, true, 48000, repeats);
    HostLane offRnd = runHostLane(PageMode::off, false, 20000, repeats);
    HostLane thpRnd = runHostLane(PageMode::thp, false, 20000, repeats);

    double seqSpeedup = thpSeq.timing.cpuSec > 0
                            ? offSeq.timing.cpuSec / thpSeq.timing.cpuSec
                            : 0;
    double rndSpeedup = thpRnd.timing.cpuSec > 0
                            ? offRnd.timing.cpuSec / thpRnd.timing.cpuSec
                            : 0;

    Table h({"lane", "off cpu s", "thp cpu s", "host speedup",
             "sim IPC off", "sim IPC thp"});
    h.addRow({"fio seq 48k ops", Table::num(offSeq.timing.cpuSec, 3),
              Table::num(thpSeq.timing.cpuSec, 3),
              Table::num(seqSpeedup, 2) + "x",
              Table::num(offSeq.simUserIpc, 3),
              Table::num(thpSeq.simUserIpc, 3)});
    h.addRow({"fio rand 20k ops", Table::num(offRnd.timing.cpuSec, 3),
              Table::num(thpRnd.timing.cpuSec, 3),
              Table::num(rndSpeedup, 2) + "x",
              Table::num(offRnd.simUserIpc, 3),
              Table::num(thpRnd.simUserIpc, 3)});
    h.print();

    bool fastEnough = seqSpeedup >= 1.3;
    std::printf("\nsequential host speedup >= 1.3x: %s\n",
                fastEnough ? "yes" : "NO");

    // Machine-readable line for BENCH_hugepages.json.
    std::printf("{\"bench\": \"fig19_pagesize\", \"repeats\": %u, "
                "\"identity\": %s, "
                "\"seq_off_cpu_s\": %.3f, \"seq_thp_cpu_s\": %.3f, "
                "\"seq_off_wall_s\": %.3f, \"seq_thp_wall_s\": %.3f, "
                "\"seq_host_speedup\": %.2f, "
                "\"rand_off_cpu_s\": %.3f, \"rand_thp_cpu_s\": %.3f, "
                "\"rand_host_speedup\": %.2f, "
                "\"seq_sim_ipc_off\": %.4f, \"seq_sim_ipc_thp\": %.4f, "
                "\"seq_sim_ops_off\": %.0f, \"seq_sim_ops_thp\": %.0f, "
                "\"rand_sim_ipc_off\": %.4f, \"rand_sim_ipc_thp\": "
                "%.4f}\n",
                repeats, identical ? "true" : "false",
                offSeq.timing.cpuSec, thpSeq.timing.cpuSec,
                offSeq.timing.wallSec, thpSeq.timing.wallSec, seqSpeedup,
                offRnd.timing.cpuSec, thpRnd.timing.cpuSec, rndSpeedup,
                offSeq.simUserIpc, thpSeq.simUserIpc, offSeq.simOpsPerSec,
                thpSeq.simOpsPerSec, offRnd.simUserIpc,
                thpRnd.simUserIpc);
    return identical && fastEnough ? 0 : 1;
}

/**
 * @file
 * Tests for the workload generators: key choosers, FIO, the KV store
 * recipes, the YCSB mixes and the SPEC-like kernels.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/logging.hh"
#include "os/file_system.hh"
#include "os/vma.hh"
#include "workloads/fio.hh"
#include "workloads/key_chooser.hh"
#include "workloads/kv_store.hh"
#include "workloads/spec_like.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
using namespace hwdp::workloads;

namespace {

struct KvFixture : ::testing::Test
{
    os::FileSystem fs{sim::Rng(4)};
    os::File *data = fs.createFile("data", 4096, os::BlockDeviceId{0, 0});
    os::File *wal = fs.createFile("wal", 1024, os::BlockDeviceId{0, 0});
    os::AddressSpace as{0};
    os::Vma *vma = as.addVma(data, 0, 4096, true, os::pte::writableBit);
    KvStore store{vma, wal, 4096};
    sim::Rng rng{11};
};

} // namespace

TEST(KeyChooser, UniformCoversRange)
{
    UniformChooser u;
    sim::Rng rng(1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto k = u.next(rng, 16);
        ASSERT_LT(k, 16u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(KeyChooser, ZipfianIsSkewed)
{
    ZipfianChooser z(1000, 0.99, false); // unscrambled: rank order
    sim::Rng rng(2);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[z.next(rng, 1000)];
    // Rank 0 dominates and the top 10 ranks take a large share.
    int top = counts[0];
    int top10 = 0;
    for (int r = 0; r < 10; ++r)
        top10 += counts[r];
    EXPECT_GT(top, 2000);
    EXPECT_GT(top10, 15000);
}

TEST(KeyChooser, ScrambledZipfianSpreadsHotKeys)
{
    ZipfianChooser z(1 << 16, 0.99, true);
    sim::Rng rng(3);
    // The most popular keys should not cluster in one region.
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[z.next(rng, 1 << 16)];
    std::uint64_t hottest = 0;
    int max = 0;
    for (auto &[k, c] : counts) {
        if (c > max) {
            max = c;
            hottest = k;
        }
    }
    // Scrambling makes it overwhelmingly unlikely the hottest key is
    // rank 0 itself.
    EXPECT_GT(max, 1000);
    (void)hottest;
}

TEST(KeyChooser, LatestFavoursRecentKeys)
{
    LatestChooser l(10000);
    sim::Rng rng(4);
    std::uint64_t high = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        auto k = l.next(rng, 10000);
        ASSERT_LT(k, 10000u);
        high += k >= 9000; // the most recent 10%
        ++total;
    }
    EXPECT_GT(static_cast<double>(high) / static_cast<double>(total),
              0.5);
}

TEST(KeyChooser, EmptyKeySpacePanics)
{
    UniformChooser u;
    sim::Rng rng(1);
    EXPECT_THROW(u.next(rng, 0), PanicError);
    EXPECT_THROW(ZipfianChooser(0), FatalError);
}

TEST(Fio, EmitsLoopAccessCopyCycle)
{
    os::FileSystem fs{sim::Rng(5)};
    auto *f = fs.createFile("f", 64, os::BlockDeviceId{0, 0});
    os::AddressSpace as{0};
    auto *vma = as.addVma(f, 0, 64, true, 0);
    FioWorkload fio(vma, 2);
    sim::Rng rng(6);

    auto a = fio.next(rng);
    EXPECT_EQ(a.kind, Op::Kind::compute);
    auto b = fio.next(rng);
    EXPECT_EQ(b.kind, Op::Kind::mem);
    EXPECT_GE(b.addr, vma->start);
    EXPECT_LT(b.addr, vma->end);
    auto c = fio.next(rng);
    EXPECT_EQ(c.kind, Op::Kind::compute);
    EXPECT_TRUE(c.endsAppOp);
    // The copy streams the just-read page.
    EXPECT_EQ(c.compute.hotBase, b.addr & ~pageOffsetMask);

    // Second op then done.
    fio.next(rng);
    fio.next(rng);
    fio.next(rng);
    EXPECT_EQ(fio.next(rng).kind, Op::Kind::done);
}

TEST_F(KvFixture, ReadRecipeTouchesRecordPage)
{
    std::deque<Op> ops;
    store.emitRead(ops, 17);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, Op::Kind::compute);
    EXPECT_EQ(ops[1].kind, Op::Kind::mem);
    EXPECT_EQ(ops[1].addr, vma->start + 17 * pageSize);
    EXPECT_TRUE(ops[2].endsAppOp);
}

TEST_F(KvFixture, UpdateRecipeWritesWal)
{
    std::deque<Op> ops;
    store.emitUpdate(ops, 3);
    int writes = 0;
    for (auto &op : ops)
        writes += op.kind == Op::Kind::fileWrite;
    EXPECT_EQ(writes, 2); // WAL append + amortised compaction
    EXPECT_TRUE(ops.back().endsAppOp);
}

TEST_F(KvFixture, ScanReadsSequentialRecords)
{
    std::deque<Op> ops;
    store.emitScan(ops, 10, 4);
    std::vector<VAddr> addrs;
    for (auto &op : ops) {
        if (op.kind == Op::Kind::mem)
            addrs.push_back(op.addr);
    }
    ASSERT_EQ(addrs.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(addrs[i], vma->start + (10 + i) * pageSize);
}

TEST_F(KvFixture, InsertGrowsKeySpaceUpToCapacity)
{
    KvStore small(vma, wal, 10);
    EXPECT_EQ(small.numKeys(), 10u);
    small.insertKey();
    EXPECT_EQ(small.numKeys(), 11u);
}

TEST_F(KvFixture, OutOfRangeKeyPanics)
{
    EXPECT_THROW(store.recordAddr(4096), PanicError);
}

TEST_F(KvFixture, YcsbMixRatios)
{
    struct Case
    {
        char type;
        double min_writes, max_writes;
    };
    for (auto [type, lo, hi] :
         {Case{'A', 0.4, 0.6}, Case{'B', 0.02, 0.09},
          Case{'C', -0.01, 0.001}, Case{'F', 0.4, 0.6}}) {
        YcsbWorkload wl(type, store, 4000);
        sim::Rng r(1234);
        std::uint64_t ops = 0, wal_writes = 0;
        while (true) {
            Op op = wl.next(r);
            if (op.kind == Op::Kind::done)
                break;
            ops += op.endsAppOp;
            wal_writes += op.kind == Op::Kind::fileWrite &&
                          op.endsAppOp == false;
        }
        EXPECT_EQ(ops, 4000u) << type;
        // Each write-class request produces >= 1 non-final fileWrite.
        double frac = static_cast<double>(wal_writes) / 4000.0;
        EXPECT_GE(frac, lo) << type;
        EXPECT_LE(frac, hi * 2.0) << type; // updates cut 2 writes
    }
}

TEST_F(KvFixture, YcsbEEmitsScans)
{
    YcsbWorkload wl('E', store, 500);
    sim::Rng r(7);
    std::uint64_t mems = 0, ops = 0;
    while (true) {
        Op op = wl.next(r);
        if (op.kind == Op::Kind::done)
            break;
        mems += op.kind == Op::Kind::mem;
        ops += op.endsAppOp;
    }
    EXPECT_EQ(ops, 500u);
    // Scans average (1+8)/2 pages: far more mem ops than requests.
    EXPECT_GT(mems, 1200u);
}

TEST_F(KvFixture, YcsbUnknownTypeRejected)
{
    EXPECT_THROW(YcsbWorkload('Z', store, 10), FatalError);
}

TEST_F(KvFixture, DbBenchIsUniformPointReads)
{
    DbBenchReadRandom wl(store, 1000);
    sim::Rng r(8);
    std::uint64_t ops = 0, writes = 0;
    while (true) {
        Op op = wl.next(r);
        if (op.kind == Op::Kind::done)
            break;
        ops += op.endsAppOp;
        writes += op.kind == Op::Kind::fileWrite;
    }
    EXPECT_EQ(ops, 1000u);
    EXPECT_EQ(writes, 0u);
}

TEST(SpecLike, AllKernelsConstructAndEmit)
{
    sim::Rng rng(9);
    for (const auto &name : SpecLikeWorkload::kernelNames()) {
        SpecLikeWorkload wl(name, 3);
        EXPECT_EQ(wl.next(rng).kind, Op::Kind::compute) << name;
        wl.next(rng);
        wl.next(rng);
        EXPECT_EQ(wl.next(rng).kind, Op::Kind::done) << name;
    }
}

TEST(SpecLike, UnknownKernelRejected)
{
    EXPECT_THROW(SpecLikeWorkload("gcc_like", 1), FatalError);
}

TEST(SpecLike, KernelsHaveDistinctDataRegions)
{
    sim::Rng rng(10);
    std::set<VAddr> bases;
    for (const auto &name : SpecLikeWorkload::kernelNames()) {
        SpecLikeWorkload wl(name, 1);
        bases.insert(wl.next(rng).compute.hotBase);
    }
    EXPECT_EQ(bases.size(), SpecLikeWorkload::kernelNames().size());
}

/**
 * @file
 * Tests for the HWDP control-plane kernel threads: kpted (metadata
 * sync) and kpoold (free page queue refill).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig()
{
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::hwdp;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 256;
    cfg.kpooldBatch = 128;
    cfg.kptedPeriod = milliseconds(1.0);
    cfg.kpooldPeriod = milliseconds(1.0);
    return cfg;
}

} // namespace

TEST(Kpoold, PrimeFillsTheQueue)
{
    system::System sys(tinyConfig());
    EXPECT_TRUE(sys.freePageQueue()->empty());
    sys.start();
    EXPECT_EQ(sys.freePageQueue()->size(), 256u);
    // Donated frames are flagged so reclaim never touches them.
    auto r = sys.freePageQueue()->pop(0);
    EXPECT_TRUE(sys.kernel().page(r.pfn).inSmuQueue);
    EXPECT_TRUE(sys.kernel().page(r.pfn).inUse);
}

TEST(Kpoold, PeriodicRefillReplenishes)
{
    system::System sys(tinyConfig());
    sys.start();
    auto *fpq = sys.freePageQueue();
    // Drain half the queue.
    for (int i = 0; i < 128; ++i) {
        auto r = fpq->pop(0);
        sys.kernel().page(r.pfn).inSmuQueue = false;
        sys.kernel().freePage(sys.kernel().page(r.pfn));
    }
    EXPECT_EQ(fpq->size(), 128u);
    sys.runFor(milliseconds(5.0));
    EXPECT_EQ(fpq->size(), 256u);
    EXPECT_GT(sys.kpoold()->batchesRun(), 0u);
}

TEST(Kpoold, RefillOverlappedDonatesImmediately)
{
    system::System sys(tinyConfig());
    sys.start();
    auto *fpq = sys.freePageQueue();
    while (!fpq->empty()) {
        auto r = fpq->pop(0);
        sys.kernel().page(r.pfn).inSmuQueue = false;
        sys.kernel().freePage(sys.kernel().page(r.pfn));
    }
    sys.kpoold()->refillOverlapped(0);
    EXPECT_EQ(fpq->size(), 128u); // one batch, state change immediate
    EXPECT_EQ(sys.kpoold()->overlappedRefills(), 1u);
}

TEST(Kpoold, AccountsDonatedPages)
{
    system::System sys(tinyConfig());
    sys.start();
    EXPECT_GE(sys.kpoold()->pagesDonated(), 256u);
}

TEST(Kpted, PeriodicSyncClearsLbaBits)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 4096);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 300);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));
    // Let kpted run a couple more periods.
    sys.runFor(milliseconds(3.0));

    std::uint64_t unsynced = 0, resident = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        os::pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        if (os::pte::isPresent(e)) {
            ++resident;
            unsynced += os::pte::needsMetadataSync(e) ? 1 : 0;
        }
    }
    EXPECT_GT(resident, 200u);
    EXPECT_EQ(unsynced, 0u);
    EXPECT_GE(sys.kpted()->pagesSynced(), resident);

    // Synced pages are visible to the page cache and the LRU.
    std::uint64_t cached = 0;
    for (std::uint64_t i = 0; i < 4096; ++i)
        cached += sys.kernel().pageCache().contains(*mf.file, i);
    EXPECT_EQ(cached, resident);
}

TEST(Kpted, SyncRangeServesMunmapBarrier)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 256);
    sys.start();

    // Install two pages the hardware way.
    for (int i = 0; i < 2; ++i) {
        Pfn pfn = sys.physMem().alloc();
        sys.kernel().installHardwareHandled(
            *mf.as, *mf.vma, mf.vma->start + i * pageSize, pfn);
    }
    bool done = false;
    sys.kpted()->syncRange(*mf.as, mf.vma->start, mf.vma->end, 0,
                           [&] { done = true; });
    sys.eventQueue().run(sys.now() + milliseconds(10.0));
    EXPECT_TRUE(done);
    for (int i = 0; i < 2; ++i) {
        os::pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        EXPECT_FALSE(os::pte::needsMetadataSync(e));
    }
}

TEST(Kpted, ChargesKptedCategory)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 4096);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 200);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));
    sys.runFor(milliseconds(3.0));
    EXPECT_GT(sys.kernel().kexec().instructions(os::KernelCostCat::kpted),
              0u);
    EXPECT_GT(sys.kernel().kexec().instructions(
                  os::KernelCostCat::kpoold),
              0u);
}

TEST(KThread, StopPreventsFurtherBatches)
{
    system::System sys(tinyConfig());
    sys.start();
    sys.runFor(milliseconds(2.0));
    auto batches = sys.kpoold()->batchesRun();
    sys.kpoold()->stop();
    sys.runFor(milliseconds(5.0));
    EXPECT_LE(sys.kpoold()->batchesRun(), batches + 1);
}

#include "workloads/kv_store.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::workloads {

void
KvStore::serialize(sim::Serializer &s)
{
    s.section("kvstore");
    s.check(data->start, "kv data vma start");
    s.io(nKeys);
    s.io(walCursor);
}

KvStore::KvStore(os::Vma *data_vma, os::File *wal_file,
                 std::uint64_t n_keys)
    : data(data_vma), wal(wal_file), nKeys(n_keys)
{
    if (!data_vma || !wal_file)
        fatal("kv store: missing data mapping or WAL file");
    if (n_keys == 0 || n_keys > data_vma->numPages())
        fatal("kv store: key count ", n_keys, " does not fit the data "
              "file (", data_vma->numPages(), " pages)");

    // Index/memtable search: a RocksDB Get is thousands of
    // instructions (skiplist walk, block index binary search, bloom
    // checks) with a hot core and pointer-chasing excursions into a
    // multi-MB index; this is the user compute the pollution figures
    // measure against.
    indexLookup.instructions = 9500;
    indexLookup.memRefFrac = 0.06;
    indexLookup.branchFrac = 0.15;
    indexLookup.hotBase = 0x30'0000'0000ULL;
    indexLookup.hotBytes = 24 * 1024;
    indexLookup.coldBytes = 2 * 1024 * 1024;
    indexLookup.coldFrac = 0.12;
    indexLookup.textBase = 0x4200'0000ULL;
    indexLookup.textBytes = 20 * 1024;
    indexLookup.branchBias = 0.96;
    indexLookup.staticBranches = 512;

    valueProcess.instructions = 8000;
    valueProcess.memRefFrac = 0.06;
    valueProcess.branchFrac = 0.12;
    valueProcess.hotBase = 0x30'4000'0000ULL;
    valueProcess.hotBytes = 16 * 1024;
    valueProcess.coldBytes = 256 * 1024;
    valueProcess.coldFrac = 0.08;
    valueProcess.textBase = 0x4208'0000ULL;
    valueProcess.textBytes = 10 * 1024;
    valueProcess.branchBias = 0.97;
    valueProcess.staticBranches = 128;

    memtableInsert.instructions = 5000;
    memtableInsert.memRefFrac = 0.07;
    memtableInsert.branchFrac = 0.15;
    memtableInsert.hotBase = 0x30'8000'0000ULL;
    memtableInsert.hotBytes = 24 * 1024;
    memtableInsert.coldBytes = 1024 * 1024;
    memtableInsert.coldFrac = 0.1;
    memtableInsert.textBase = 0x4210'0000ULL;
    memtableInsert.textBytes = 12 * 1024;
    memtableInsert.branchBias = 0.95;
    memtableInsert.staticBranches = 256;
}

std::uint64_t
KvStore::insertKey()
{
    if (nKeys < data->numPages())
        ++nKeys;
    return nKeys - 1;
}

VAddr
KvStore::recordAddr(std::uint64_t key) const
{
    if (key >= nKeys)
        panic("kv store: key ", key, " beyond loaded range ", nKeys);
    return data->start + key * pageSize;
}

void
KvStore::emitRead(std::deque<Op> &ops, std::uint64_t key) const
{
    ops.push_back(Op::makeCompute(indexLookup));
    ops.push_back(Op::makeMem(recordAddr(key), false));
    Op last = Op::makeCompute(valueProcess, true);
    ops.push_back(last);
}

void
KvStore::emitUpdate(std::deque<Op> &ops, std::uint64_t key)
{
    ops.push_back(Op::makeCompute(indexLookup));
    // WAL append (4 KB record + framing) through write().
    ops.push_back(Op::makeFileWrite(wal, walCursor++, pageSize + 64));
    ops.push_back(Op::makeCompute(memtableInsert));
    // Amortised compaction traffic: roughly one page of background
    // write per update once the memtable rolls over.
    ops.push_back(Op::makeFileWrite(wal, walCursor++, pageSize, true));
    // Updated record will be rewritten; mark the page dirty by a
    // store to it (no read needed for a blind update in the model).
    (void)key;
}

void
KvStore::emitInsert(std::deque<Op> &ops)
{
    insertKey();
    ops.push_back(Op::makeCompute(indexLookup));
    ops.push_back(Op::makeFileWrite(wal, walCursor++, pageSize + 64));
    Op fin = Op::makeCompute(memtableInsert, true);
    ops.push_back(fin);
}

void
KvStore::emitScan(std::deque<Op> &ops, std::uint64_t key,
                  unsigned length) const
{
    ops.push_back(Op::makeCompute(indexLookup));
    for (unsigned i = 0; i < length; ++i) {
        std::uint64_t k = (key + i) % nKeys;
        bool last = i + 1 == length;
        ops.push_back(Op::makeMem(recordAddr(k), false, last));
    }
}

void
KvStore::emitReadModifyWrite(std::deque<Op> &ops, std::uint64_t key)
{
    ops.push_back(Op::makeCompute(indexLookup));
    ops.push_back(Op::makeMem(recordAddr(key), false));
    ops.push_back(Op::makeCompute(valueProcess));
    ops.push_back(Op::makeFileWrite(wal, walCursor++, pageSize + 64));
    Op fin = Op::makeCompute(memtableInsert, true);
    ops.push_back(fin);
}

} // namespace hwdp::workloads

/**
 * @file
 * Tests for the four-level page table, including the kpted scan
 * machinery (guided vs exhaustive).
 */

#include <gtest/gtest.h>

#include <set>

#include "os/page_table.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::os;

TEST(PageTable, ReadOfUnmappedIsZero)
{
    PageTable pt;
    EXPECT_EQ(pt.readPte(0x7f00'0000'0000ULL), 0u);
}

TEST(PageTable, WriteThenRead)
{
    PageTable pt;
    VAddr va = 0x7f00'1234'5000ULL;
    pt.writePte(va, pte::makePresent(0x42, pte::writableBit));
    EXPECT_EQ(pte::pfnOf(pt.readPte(va)), 0x42u);
    // Neighbouring page unaffected.
    EXPECT_EQ(pt.readPte(va + pageSize), 0u);
}

TEST(PageTable, WalkRefsWithoutAllocateReturnsInvalid)
{
    PageTable pt;
    WalkRefs refs = pt.walkRefs(0x7f00'0000'0000ULL, false);
    EXPECT_FALSE(refs.pte.valid());
}

TEST(PageTable, WalkRefsAllocatesTree)
{
    PageTable pt;
    VAddr va = 0x7f00'0000'0000ULL;
    WalkRefs refs = pt.walkRefs(va, true);
    ASSERT_TRUE(refs.pud.valid());
    ASSERT_TRUE(refs.pmd.valid());
    ASSERT_TRUE(refs.pte.valid());
    refs.pte.write(pte::makePresent(7, 0));
    EXPECT_EQ(pte::pfnOf(pt.readPte(va)), 7u);
}

TEST(PageTable, EntryAddressesAreUniquePerEntry)
{
    PageTable pt;
    std::set<PAddr> addrs;
    for (int i = 0; i < 1024; ++i) {
        VAddr va = 0x7f00'0000'0000ULL + static_cast<VAddr>(i) * pageSize;
        WalkRefs refs = pt.walkRefs(va, true);
        EXPECT_TRUE(addrs.insert(refs.pte.addr).second);
    }
    // PMD entry addresses: one per 2 MB region, also unique.
    std::set<PAddr> pmds;
    for (int i = 0; i < 8; ++i) {
        VAddr va = 0x7f00'0000'0000ULL +
                   static_cast<VAddr>(i) * (2ULL << 20);
        pmds.insert(pt.walkRefs(va, true).pmd.addr);
    }
    EXPECT_EQ(pmds.size(), 8u);
}

TEST(PageTable, MarkUpperLbaSetsBothLevels)
{
    PageTable pt;
    VAddr va = 0x7f00'0000'0000ULL;
    pt.walkRefs(va, true);
    pt.markUpperLba(va);
    WalkRefs refs = pt.walkRefs(va, false);
    EXPECT_TRUE(pte::hasLbaBit(refs.pmd.value()));
    EXPECT_TRUE(pte::hasLbaBit(refs.pud.value()));
}

TEST(PageTable, MarkUpperLbaOnUnpopulatedPanics)
{
    PageTable pt;
    EXPECT_THROW(pt.markUpperLba(0x7f00'0000'0000ULL), PanicError);
}

namespace {

/** Make a hardware-handled PTE (present + LBA) and mark uppers. */
void
installHw(PageTable &pt, VAddr va, Pfn pfn)
{
    WalkRefs refs = pt.walkRefs(va, true);
    refs.pte.write(pte::makePresent(pfn, pte::writableBit, true));
    pt.markUpperLba(va);
}

} // namespace

TEST(PageTable, GuidedScanFindsHardwareHandledPtes)
{
    PageTable pt;
    VAddr base = 0x7f00'0000'0000ULL;
    std::set<VAddr> installed;
    sim::Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        VAddr va = base + rng.range(1 << 16) * pageSize;
        if (installed.count(va))
            continue;
        installHw(pt, va, i + 1);
        installed.insert(va);
    }

    std::set<VAddr> found;
    std::uint64_t visited = 0;
    std::uint64_t synced = pt.scanUnsynced(
        base, base + (1ULL << 16) * pageSize,
        [&](VAddr va, EntryRef ref) {
            found.insert(va);
            ref.write(pte::clearLbaBit(ref.value()));
        },
        &visited);
    EXPECT_EQ(synced, installed.size());
    EXPECT_EQ(found, installed);
    EXPECT_GT(visited, 0u);
}

TEST(PageTable, GuidedAndFullScansAgree)
{
    PageTable a, b;
    VAddr base = 0x7f00'0000'0000ULL;
    sim::Rng rng(5);
    for (int i = 0; i < 128; ++i) {
        VAddr va = base + rng.range(1 << 18) * pageSize;
        installHw(a, va, 1);
        installHw(b, va, 1);
    }
    std::set<VAddr> fa, fb;
    a.scanUnsynced(base, base + (1ULL << 18) * pageSize,
                   [&](VAddr va, EntryRef ref) {
                       fa.insert(va);
                       ref.write(pte::clearLbaBit(ref.value()));
                   });
    b.scanUnsyncedFull(base, base + (1ULL << 18) * pageSize,
                       [&](VAddr va, EntryRef ref) {
                           fb.insert(va);
                           ref.write(pte::clearLbaBit(ref.value()));
                       });
    EXPECT_EQ(fa, fb);
}

TEST(PageTable, GuidedScanSkipsCleanSubtrees)
{
    PageTable pt;
    VAddr base = 0x7f00'0000'0000ULL;
    // Populate 64 Ki PTEs as plain LBA-augmented (non-present): they
    // need no sync, and without upper-level marks the guided scan
    // must skip their tables wholesale.
    for (std::uint64_t i = 0; i < (1 << 16); ++i)
        pt.writePte(base + i * pageSize,
                    pte::makeLbaAugmented(0, 0, i, 0));
    // One hardware-handled PTE at the end.
    installHw(pt, base + ((1 << 16) - 1) * pageSize, 1);

    std::uint64_t guided_visited = 0, full_visited = 0;
    std::uint64_t g = pt.scanUnsynced(base, base + (1ULL << 16) *
                                                pageSize,
                                      [](VAddr, EntryRef ref) {
                                          ref.write(pte::clearLbaBit(
                                              ref.value()));
                                      },
                                      &guided_visited);
    EXPECT_EQ(g, 1u);

    // Re-install and compare with the exhaustive scan.
    installHw(pt, base + ((1 << 16) - 1) * pageSize, 1);
    std::uint64_t f = pt.scanUnsyncedFull(
        base, base + (1ULL << 16) * pageSize,
        [](VAddr, EntryRef ref) {
            ref.write(pte::clearLbaBit(ref.value()));
        },
        &full_visited);
    EXPECT_EQ(f, 1u);
    EXPECT_LT(guided_visited * 10, full_visited);
}

TEST(PageTable, ScanClearsUpperBitsBeforeDescending)
{
    PageTable pt;
    VAddr va = 0x7f00'0000'0000ULL;
    installHw(pt, va, 1);
    pt.scanUnsynced(va, va + pageSize, [](VAddr, EntryRef ref) {
        ref.write(pte::clearLbaBit(ref.value()));
    });
    WalkRefs refs = pt.walkRefs(va, false);
    EXPECT_FALSE(pte::hasLbaBit(refs.pmd.value()));
    EXPECT_FALSE(pte::hasLbaBit(refs.pud.value()));
    // Second scan finds nothing and skips cheaply.
    std::uint64_t visited = 0;
    EXPECT_EQ(pt.scanUnsynced(va, va + pageSize,
                              [](VAddr, EntryRef) {}, &visited),
              0u);
}

TEST(PageTable, RescanFindsPagesInstalledAfterFirstScan)
{
    // The scan-condition guarantee (IV-C): hardware re-marks upper
    // levels when it installs during/after a scan pass.
    PageTable pt;
    VAddr base = 0x7f00'0000'0000ULL;
    installHw(pt, base, 1);
    pt.scanUnsynced(base, base + (1 << 12) * pageSize,
                    [](VAddr, EntryRef ref) {
                        ref.write(pte::clearLbaBit(ref.value()));
                    });
    installHw(pt, base + 5 * pageSize, 2);
    std::set<VAddr> found;
    pt.scanUnsynced(base, base + (1 << 12) * pageSize,
                    [&](VAddr va, EntryRef ref) {
                        found.insert(va);
                        ref.write(pte::clearLbaBit(ref.value()));
                    });
    EXPECT_EQ(found.size(), 1u);
    EXPECT_TRUE(found.count(base + 5 * pageSize));
}

TEST(PageTable, ForEachPteVisitsPopulatedRange)
{
    PageTable pt;
    VAddr base = 0x7f00'0000'0000ULL;
    for (int i = 0; i < 10; ++i)
        pt.writePte(base + i * pageSize, pte::makePresent(i + 1, 0));
    int count = 0;
    pt.forEachPte(base, base + 10 * pageSize,
                  [&](VAddr, EntryRef) { ++count; });
    EXPECT_EQ(count, 10);
}

TEST(PageTable, TablePagesAccounting)
{
    PageTable pt;
    std::uint64_t start = pt.tablePages();
    pt.writePte(0x7f00'0000'0000ULL, 1);
    // PGD exists already; PUD + PMD + PT allocated: +3.
    EXPECT_EQ(pt.tablePages(), start + 3);
    pt.writePte(0x7f00'0000'1000ULL, 1); // same leaf table
    EXPECT_EQ(pt.tablePages(), start + 3);
    pt.writePte(0x7f00'0020'0000ULL, 1); // next 2MB: +1 leaf table
    EXPECT_EQ(pt.tablePages(), start + 4);
}

/**
 * @file
 * Figure 4: the cost of page faults on YCSB-C — ideal (pre-loaded,
 * MAP_POPULATE, no faults) vs OSDP (cold, faulting).
 *
 * Paper: OSDP achieves less than half the ideal throughput, and the
 * user-level IPC drops with elevated user-level cache and branch
 * misses — the indirect, microarchitectural cost of OS fault handling.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Run
{
    double opsPerSec;
    double userIpc;
    double l1iMpki, l1dMpki, llcMpki, brMpki;
};

Run
runYcsbC(bool preload)
{
    auto cfg = bench::paperConfig(system::PagingMode::osdp);
    // Dataset fits in memory (the Figure 4 configuration).
    std::uint64_t pages = bench::defaultMemFrames * 3 / 4;

    system::System sys(cfg);
    auto mf = sys.mapDataset("kv.dat", pages);
    if (preload)
        sys.preload(mf);
    auto *wal = sys.createFile("kv.wal", 64 * 1024);
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *h = sys.makeWorkload<Holder>();
    h->s = std::make_unique<workloads::KvStore>(mf.vma, wal, pages);
    for (unsigned t = 0; t < 4; ++t) {
        auto *wl =
            sys.makeWorkload<workloads::YcsbWorkload>('C', *h->s, 8000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    Run r;
    r.opsPerSec = sys.throughputOpsPerSec();
    r.userIpc = sys.aggregateUserIpc();
    std::uint64_t instr = 0;
    for (auto &tc : sys.threads())
        instr += tc->userInstructions();
    auto &mc = sys.caches().counters(ExecMode::user);
    double ki = static_cast<double>(instr) / 1000.0;
    r.l1iMpki = static_cast<double>(mc.l1iMisses) / ki;
    r.l1dMpki = static_cast<double>(mc.l1dMisses) / ki;
    r.llcMpki = static_cast<double>(mc.llcMisses) / ki;
    r.brMpki = static_cast<double>(sys.userBranchMispredicts()) / ki;
    return r;
}

} // namespace

int
main()
{
    metrics::banner("Figure 4: ideal (no faults) vs OSDP on YCSB-C",
                    "paper: OSDP < 0.5x throughput; user IPC and "
                    "user-level miss events degrade");

    Run ideal = runYcsbC(true);
    Run osdp = runYcsbC(false);

    Table t({"metric", "ideal", "OSDP", "OSDP / ideal"});
    t.addRow({"throughput (ops/s)", Table::num(ideal.opsPerSec, 0),
              Table::num(osdp.opsPerSec, 0),
              Table::num(osdp.opsPerSec / ideal.opsPerSec)});
    t.addRow({"user-level IPC", Table::num(ideal.userIpc),
              Table::num(osdp.userIpc),
              Table::num(osdp.userIpc / ideal.userIpc)});
    t.addRow({"user L1I MPKI", Table::num(ideal.l1iMpki),
              Table::num(osdp.l1iMpki),
              Table::num(osdp.l1iMpki / std::max(ideal.l1iMpki, 1e-9))});
    t.addRow({"user L1D MPKI", Table::num(ideal.l1dMpki),
              Table::num(osdp.l1dMpki),
              Table::num(osdp.l1dMpki / std::max(ideal.l1dMpki, 1e-9))});
    t.addRow({"user LLC MPKI", Table::num(ideal.llcMpki),
              Table::num(osdp.llcMpki),
              Table::num(osdp.llcMpki / std::max(ideal.llcMpki, 1e-9))});
    t.addRow({"user branch MPKI", Table::num(ideal.brMpki),
              Table::num(osdp.brMpki),
              Table::num(osdp.brMpki / std::max(ideal.brMpki, 1e-9))});
    t.print();
    return 0;
}

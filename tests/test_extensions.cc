/**
 * @file
 * Tests for the Section V extensions implemented beyond the paper's
 * base design: anonymous zero-fill acceleration, the long-latency
 * stall timeout, and the SMU's sequential next-page prefetch.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 4096;
    cfg.smu.freeQueueCapacity = 256;
    return cfg;
}

struct TouchPages : workloads::Workload
{
    os::Vma *vma;
    std::uint64_t n;
    std::uint64_t i = 0;
    bool write;
    TouchPages(os::Vma *v, std::uint64_t n, bool w = true)
        : vma(v), n(n), write(w)
    {
    }
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= n)
            return workloads::Op::makeDone();
        return workloads::Op::makeMem(vma->start + (i++) * pageSize,
                                      write, true);
    }
    const char *label() const override { return "touch"; }
};

} // namespace

TEST(AnonZeroFill, FastAnonMmapCarriesZeroFillLba)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapAnon(64);
    for (int i = 0; i < 64; ++i) {
        os::pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        ASSERT_TRUE(os::pte::isLbaAugmented(e));
        EXPECT_EQ(os::pte::lbaOf(e), os::pte::zeroFillLba);
    }
    EXPECT_EQ(mf.vma->file, nullptr);
}

TEST(AnonZeroFill, SmuHandlesFirstTouchWithoutIo)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapAnon(64);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 32);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));

    EXPECT_EQ(sys.smu()->zeroFills(), 32u);
    EXPECT_EQ(sys.ssd().readsCompleted(), 0u); // I/O bypassed
    EXPECT_EQ(sys.kernel().majorFaults(), 0u);
    EXPECT_EQ(sys.kernel().minorFaults(), 0u);
}

TEST(AnonZeroFill, ZeroFillIsFarFasterThanDeviceRead)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapAnon(64);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 32);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));
    // Sub-microsecond handling instead of ~11 us of device time.
    EXPECT_LT(sys.smu()->missLatencyUs().mean(), 1.0);
    EXPECT_EQ(tc->hwHandledOps(), 32u);
}

TEST(AnonZeroFill, OsdpAnonFaultTakesMinorPath)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapAnon(64);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 16);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));
    EXPECT_EQ(sys.kernel().minorFaults(), 16u);
    EXPECT_EQ(sys.ssd().readsCompleted(), 0u);
}

TEST(AnonZeroFill, KptedSyncsAnonymousPages)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.kptedPeriod = milliseconds(1.0);
    system::System sys(cfg);
    auto mf = sys.mapAnon(64);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 16);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));
    sys.runFor(milliseconds(3.0));

    for (int i = 0; i < 16; ++i) {
        os::pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        ASSERT_TRUE(os::pte::isPresent(e));
        EXPECT_FALSE(os::pte::needsMetadataSync(e)) << i;
        // Anonymous pages join the LRU but not the page cache.
        auto &pg = sys.kernel().page(os::pte::pfnOf(e));
        EXPECT_TRUE(pg.lruLinked);
        EXPECT_FALSE(pg.inPageCache);
    }
}

TEST(AnonZeroFill, AnonymousPagesAreNotEvicted)
{
    // Fill memory with file pages under pressure: the anon pages must
    // survive (no swap in the model).
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.kptedPeriod = milliseconds(1.0);
    system::System sys(cfg);
    auto anon = sys.mapAnon(64);
    auto *wl = sys.makeWorkload<TouchPages>(anon.vma, 64);
    sys.addThread(*wl, 0, *anon.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));

    auto filef = sys.mapDataset("f", 16 * 1024, anon.as);
    auto *wl2 = sys.makeWorkload<workloads::FioWorkload>(filef.vma,
                                                         4000);
    sys.addThread(*wl2, 1, *anon.as);
    sys.eventQueue().runWhile(
        [&] { return sys.totalAppOps() < 64 + 4000; }, seconds(20.0));

    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(os::pte::isPresent(anon.as->pageTable().readPte(
            anon.vma->start + i * pageSize)))
            << "anon page " << i << " was evicted";
    }
}

TEST(StallTimeout, LongDeviceLatencyTriggersContextSwitch)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.ssdProfile = "hdd";                 // ~10 ms reads
    cfg.hwStallTimeout = microseconds(50.0); // far below the device
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 1024);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 4, false);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));

    EXPECT_EQ(sys.core(0).mmu().stallTimeouts(), 4u);
    EXPECT_EQ(sys.totalAppOps(), 4u); // all accesses still complete
    EXPECT_EQ(sys.smu()->handled(), 4u);
}

TEST(StallTimeout, FastDeviceNeverTimesOut)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.hwStallTimeout = milliseconds(1.0); // far above Z-SSD time
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 1024);
    auto *wl = sys.makeWorkload<TouchPages>(mf.vma, 8, false);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));
    EXPECT_EQ(sys.core(0).mmu().stallTimeouts(), 0u);
}

TEST(StallTimeout, FreesTheCoreForOtherThreads)
{
    // With the timeout, a second thread on the same logical core gets
    // CPU time during the multi-millisecond stalls.
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.ssdProfile = "hdd";
    cfg.hwStallTimeout = microseconds(50.0);
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 1024);
    auto *io = sys.makeWorkload<TouchPages>(mf.vma, 3, false);
    sys.addThread(*io, 0, *mf.as);

    struct Spin : workloads::Workload
    {
        std::uint64_t n = 0;
        workloads::Op
        next(sim::Rng &) override
        {
            if (n++ >= 50)
                return workloads::Op::makeDone();
            workloads::ComputeSpec spec;
            spec.instructions = 2000;
            return workloads::Op::makeCompute(spec, true);
        }
        const char *label() const override { return "spin"; }
    };
    auto *spin = sys.makeWorkload<Spin>();
    auto *spin_as = sys.kernel().createAddressSpace();
    sys.addThread(*spin, 0, *spin_as); // same core as the I/O thread

    // The spinner (microseconds of work) must finish long before the
    // I/O thread (~30 ms of HDD reads): it could only do so if the
    // stalls release the core.
    sys.start();
    sys.eventQueue().runWhile(
        [&] { return sys.threads()[1]->done() == false; }, seconds(5.0));
    EXPECT_TRUE(sys.threads()[1]->done());
    EXPECT_FALSE(sys.threads()[0]->done());
    sys.runUntilThreadsDone(seconds(5.0));
}

TEST(SeqPrefetch, SequentialReadsHitPrefetchedPages)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.smu.sequentialPrefetch = true;
    cfg.smu.freeQueueCapacity = 1024;
    cfg.kpooldPeriod = microseconds(500.0); // keep the queue topped up
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 2048);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(
        mf.vma, 256, 300, /*sequential=*/true);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));

    EXPECT_GT(sys.smu()->prefetches(), 100u);
    // Roughly every other access finds its page already installed by
    // the prefetch: far fewer faulting ops than the 256 issued...
    EXPECT_LT(tc->faultedOps(), 170u);
    // ...and the mean per-access latency drops well below one device
    // time (hits cost a TLB miss + walk only).
    EXPECT_LT(tc->memLatencyUs().mean(), 9.0);
}

TEST(SeqPrefetch, DisabledByDefault)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 2048);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(
        mf.vma, 64, 300, true);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));
    EXPECT_EQ(sys.smu()->prefetches(), 0u);
}

TEST(SeqPrefetch, DoesNotRunAwayThroughTheMapping)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.smu.sequentialPrefetch = true;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 2048);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(
        mf.vma, 16, 300, true);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));
    // At most one prefetch per demand miss: bounded run-ahead.
    EXPECT_LE(sys.smu()->prefetches(), 16u);
}

/**
 * @file
 * FaultPlan behaviour: every injection site fires under a fixed seed,
 * the injection schedule is a pure function of the seed (replayable),
 * different seeds produce different schedules, and a fault-injected
 * machine still satisfies every consistency invariant — checked both
 * mid-run and at completion.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    return cfg;
}

struct FioRun
{
    std::unique_ptr<system::System> sys;
    std::unique_ptr<ht::FaultPlan> plan;
    cpu::ThreadContext *tc = nullptr;
};

FioRun
makeFioRun(system::PagingMode mode, std::uint64_t plan_seed,
           std::uint64_t ops = 2500, double rate = 0.02)
{
    FioRun r;
    r.sys = std::make_unique<system::System>(smallConfig(mode));
    r.plan = std::make_unique<ht::FaultPlan>(
        "plan", r.sys->eventQueue(), plan_seed);
    auto mf = r.sys->mapDataset("f", 16 * 1024);
    auto *wl =
        r.sys->makeWorkload<workloads::FioWorkload>(mf.vma, ops);
    r.tc = r.sys->addThread(*wl, 0, *mf.as);
    r.plan->attach(*r.sys);
    if (rate > 0.0)
        r.plan->armAllAtRate(rate);
    return r;
}

/** The sites a single-socket machine exposes. */
constexpr unsigned numLocalSites = 6;

const ht::FaultSite numaSites[] = {
    ht::FaultSite::remoteFpqDry, ht::FaultSite::shootdownDrop,
    ht::FaultSite::shootdownDelay, ht::FaultSite::remotePmshrFull};

/** Every site a pageMode=off machine can expose (huge sites excluded). */
constexpr unsigned numPageModeOffSites = 10;

const ht::FaultSite hugeSites[] = {ht::FaultSite::hugeCoalesceAbort,
                                   ht::FaultSite::hugeSplitStorm,
                                   ht::FaultSite::staleWideTlb};

/**
 * A two-socket machine with one FIO thread per socket, each working a
 * dataset on its local device — both sockets' SMUs field faults, and
 * kpted's sync broadcasts fan out across the socket boundary.
 */
FioRun
makeNumaFioRun(system::PagingMode mode, std::uint64_t plan_seed,
               std::uint64_t ops = 1500, double rate = 0.05,
               std::uint64_t mem_frames = 8 * 1024,
               std::uint64_t dataset_pages = 8 * 1024)
{
    FioRun r;
    auto cfg = smallConfig(mode);
    cfg.sockets = 2;
    cfg.memFrames = mem_frames;
    r.sys = std::make_unique<system::System>(cfg);
    r.plan = std::make_unique<ht::FaultPlan>(
        "plan", r.sys->eventQueue(), plan_seed);
    for (unsigned s = 0; s < 2; ++s) {
        auto mf = r.sys->mapDataset("f" + std::to_string(s),
                                    dataset_pages, nullptr, s);
        auto *wl =
            r.sys->makeWorkload<workloads::FioWorkload>(mf.vma, ops);
        cpu::ThreadContext *tc =
            r.sys->addThread(*wl, s * cfg.coresPerSocket(), *mf.as);
        if (s == 0)
            r.tc = tc;
    }
    r.plan->attach(*r.sys);
    if (rate > 0.0)
        r.plan->armAllAtRate(rate);
    return r;
}

/**
 * A single-socket machine with translation reach enabled. THP machines
 * (osdp) allocate 2 MB units at fault time and reclaim them whole
 * under pressure; coalesce machines (hwdp, sequential FIO) promote
 * demand-paged runs in the background.
 */
FioRun
makeHugeFioRun(system::PagingMode mode, PageMode page_mode,
               bool sequential, std::uint64_t plan_seed,
               std::uint64_t ops = 2500)
{
    FioRun r;
    auto cfg = smallConfig(mode);
    cfg.pageMode = page_mode;
    r.sys = std::make_unique<system::System>(cfg);
    r.plan = std::make_unique<ht::FaultPlan>(
        "plan", r.sys->eventQueue(), plan_seed);
    auto mf = r.sys->mapDataset("f", 16 * 1024);
    auto *wl = r.sys->makeWorkload<workloads::FioWorkload>(
        mf.vma, ops, 300, sequential);
    r.tc = r.sys->addThread(*wl, 0, *mf.as);
    r.plan->attach(*r.sys);
    return r;
}

} // namespace

TEST(FaultInjection, EverySiteFiresUnderFixedSeed)
{
    FioRun r = makeFioRun(system::PagingMode::hwdp, 7);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));

    for (unsigned i = 0; i < numLocalSites; ++i) {
        auto s = static_cast<ht::FaultSite>(i);
        EXPECT_GT(r.plan->queries(s), 0u) << ht::faultSiteName(s);
        EXPECT_GT(r.plan->injections(s), 0u)
            << ht::faultSiteName(s);
    }
    // A single-socket machine never touches the NUMA sites.
    for (ht::FaultSite s : numaSites)
        EXPECT_EQ(r.plan->queries(s), 0u) << ht::faultSiteName(s);
    EXPECT_EQ(r.plan->totalInjections(), r.plan->log().size());

    // The machine absorbed every fault: all ops completed.
    EXPECT_EQ(r.sys->totalAppOps(), 2500u);
}

TEST(FaultInjection, NumaSitesFireOnTwoSocketMachine)
{
    FioRun r = makeNumaFioRun(system::PagingMode::hwdp, 7);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));

    for (unsigned i = 0; i < numPageModeOffSites; ++i) {
        auto s = static_cast<ht::FaultSite>(i);
        EXPECT_GT(r.plan->queries(s), 0u) << ht::faultSiteName(s);
        EXPECT_GT(r.plan->injections(s), 0u)
            << ht::faultSiteName(s);
    }
    // pageMode=off machines never query the translation-reach sites.
    for (ht::FaultSite s : hugeSites)
        EXPECT_EQ(r.plan->queries(s), 0u) << ht::faultSiteName(s);
    EXPECT_EQ(r.plan->totalInjections(), r.plan->log().size());
    EXPECT_EQ(r.sys->totalAppOps(), 3000u);

    // The injected drops/delays landed on socket 1's counters.
    const system::Socket &sk1 = r.sys->socketAt(1);
    EXPECT_GT(sk1.shootdownsDropped, 0u);
    EXPECT_GT(sk1.shootdownsDelayed, 0u);
    EXPECT_EQ(sk1.shootdownEpoch, r.sys->socketAt(0).shootdownEpoch);
}

TEST(FaultInjection, NumaFaultScheduleReplaysUnderSameSeed)
{
    FioRun a = makeNumaFioRun(system::PagingMode::hwdp, 11);
    FioRun b = makeNumaFioRun(system::PagingMode::hwdp, 11);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(30.0)));

    const auto &la = a.plan->log();
    const auto &lb = b.plan->log();
    ASSERT_EQ(la.size(), lb.size());
    ASSERT_GT(la.size(), 0u);
    for (std::size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].site, lb[i].site) << "entry " << i;
        EXPECT_EQ(la[i].tick, lb[i].tick) << "entry " << i;
        EXPECT_EQ(la[i].querySeq, lb[i].querySeq) << "entry " << i;
    }

    std::ostringstream da, db;
    ht::quiesce(*a.sys);
    ht::quiesce(*b.sys);
    ht::dumpMachineStats(*a.sys, da);
    ht::dumpMachineStats(*b.sys, db);
    ASSERT_FALSE(da.str().empty());
    EXPECT_EQ(da.str(), db.str());
}

TEST(FaultInjection, NumaInvariantsHoldMidRunAndAtCompletion)
{
    FioRun r = makeNumaFioRun(system::PagingMode::hwdp, 29);
    r.sys->eventQueue().runWhile(
        [&] { return r.sys->totalAppOps() < 800; }, seconds(30.0));
    auto mid = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(mid.empty()) << mid.front();

    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(*r.sys);
    auto end = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(end.empty()) << end.front();
}

TEST(FaultInjection, NumaFaultedFinalStateMatchesClean)
{
    // Pressure-free (datasets fit in DRAM) so reclaim order cannot
    // differ between the runs; every injected fault — including every
    // dropped or deferred remote shootdown — must then be invisible in
    // the final logical state.
    FioRun faulted = makeNumaFioRun(system::PagingMode::hwdp, 31, 1200,
                                    0.05, 48 * 1024, 8 * 1024);
    FioRun clean = makeNumaFioRun(system::PagingMode::hwdp, 31, 1200,
                                  0.0, 48 * 1024, 8 * 1024);
    ASSERT_TRUE(faulted.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(clean.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_GT(faulted.plan->totalInjections(), 0u);
    ht::quiesce(*faulted.sys);
    ht::quiesce(*clean.sys);

    auto a = ht::snapshot(*faulted.sys, "faulted");
    auto b = ht::snapshot(*clean.sys, "clean");
    auto d = ht::diff(a, b);
    EXPECT_TRUE(d.equivalent) << d.report;
}

TEST(FaultInjection, NumaSwSmuRoutesRemoteQueueSites)
{
    FioRun r = makeNumaFioRun(system::PagingMode::swsmu, 37, 1200);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(r.plan->queries(ht::FaultSite::fpqDry), 0u);
    EXPECT_GT(r.plan->queries(ht::FaultSite::remoteFpqDry), 0u);
    // No PMSHR exists in swsmu mode, local or remote.
    EXPECT_EQ(r.plan->queries(ht::FaultSite::pmshrFull), 0u);
    EXPECT_EQ(r.plan->queries(ht::FaultSite::remotePmshrFull), 0u);
    EXPECT_EQ(r.sys->totalAppOps(), 2400u);
}

TEST(FaultInjection, SameSeedReplaysIdenticalSchedule)
{
    FioRun a = makeFioRun(system::PagingMode::hwdp, 11);
    FioRun b = makeFioRun(system::PagingMode::hwdp, 11);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(30.0)));

    const auto &la = a.plan->log();
    const auto &lb = b.plan->log();
    ASSERT_EQ(la.size(), lb.size());
    ASSERT_GT(la.size(), 0u);
    for (std::size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].site, lb[i].site) << "entry " << i;
        EXPECT_EQ(la[i].tick, lb[i].tick) << "entry " << i;
        EXPECT_EQ(la[i].querySeq, lb[i].querySeq) << "entry " << i;
    }
}

TEST(FaultInjection, SameSeedByteIdenticalStatsDump)
{
    FioRun a = makeFioRun(system::PagingMode::hwdp, 13);
    FioRun b = makeFioRun(system::PagingMode::hwdp, 13);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(*a.sys);
    ht::quiesce(*b.sys);

    std::ostringstream da, db;
    ht::dumpMachineStats(*a.sys, da);
    ht::dumpMachineStats(*b.sys, db);
    ASSERT_FALSE(da.str().empty());
    EXPECT_EQ(da.str(), db.str());
}

TEST(FaultInjection, DifferentSeedsDivergeInjectionPoints)
{
    FioRun a = makeFioRun(system::PagingMode::hwdp, 17);
    FioRun b = makeFioRun(system::PagingMode::hwdp, 18);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(30.0)));

    const auto &la = a.plan->log();
    const auto &lb = b.plan->log();
    ASSERT_GT(la.size(), 0u);
    ASSERT_GT(lb.size(), 0u);
    bool same = la.size() == lb.size();
    if (same) {
        for (std::size_t i = 0; i < la.size(); ++i) {
            if (la[i].site != lb[i].site ||
                la[i].querySeq != lb[i].querySeq) {
                same = false;
                break;
            }
        }
    }
    EXPECT_FALSE(same);
}

TEST(FaultInjection, DisarmedPlanInjectsNothingButCountsQueries)
{
    FioRun r = makeFioRun(system::PagingMode::hwdp, 19, 800, 0.0);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(r.plan->totalInjections(), 0u);
    EXPECT_GT(r.plan->queries(ht::FaultSite::ssdReadError), 0u);
    EXPECT_GT(r.plan->queries(ht::FaultSite::fpqDry), 0u);
    EXPECT_GT(r.plan->queries(ht::FaultSite::pmshrFull), 0u);
}

TEST(FaultInjection, MaxInjectionsCapsTheSite)
{
    FioRun r = makeFioRun(system::PagingMode::hwdp, 23, 2000, 0.0);
    r.plan->site(ht::FaultSite::pmshrFull).rate = 1.0;
    r.plan->site(ht::FaultSite::pmshrFull).maxInjections = 5;
    r.plan->arm(ht::FaultSite::pmshrFull);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(r.plan->injections(ht::FaultSite::pmshrFull), 5u);
    EXPECT_EQ(r.sys->totalAppOps(), 2000u);
}

TEST(FaultInjection, InvariantsHoldMidRunAndAtCompletionUnderFaults)
{
    FioRun r = makeFioRun(system::PagingMode::hwdp, 29);
    r.sys->eventQueue().runWhile(
        [&] { return r.sys->totalAppOps() < 1000; }, seconds(30.0));
    auto mid = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(mid.empty()) << mid.front();

    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(*r.sys);
    auto end = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(end.empty()) << end.front();
}

TEST(FaultInjection, ArmingHugeSitesDoesNotShiftOffModeReplay)
{
    // The huge sites are appended after every pre-existing site, and
    // an off machine never queries them — so arming them at rate 1.0
    // must leave a pageMode=off replay untouched, injection for
    // injection and byte for byte.
    FioRun a = makeNumaFioRun(system::PagingMode::hwdp, 41);
    FioRun b = makeNumaFioRun(system::PagingMode::hwdp, 41);
    for (ht::FaultSite s : hugeSites) {
        b.plan->site(s).rate = 1.0;
        b.plan->arm(s);
    }
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(30.0)));

    const auto &la = a.plan->log();
    const auto &lb = b.plan->log();
    ASSERT_EQ(la.size(), lb.size());
    ASSERT_GT(la.size(), 0u);
    for (std::size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].site, lb[i].site) << "entry " << i;
        EXPECT_EQ(la[i].tick, lb[i].tick) << "entry " << i;
    }
    for (ht::FaultSite s : hugeSites)
        EXPECT_EQ(b.plan->injections(s), 0u) << ht::faultSiteName(s);

    ht::quiesce(*a.sys);
    ht::quiesce(*b.sys);
    std::ostringstream da, db;
    ht::dumpMachineStats(*a.sys, da);
    ht::dumpMachineStats(*b.sys, db);
    ASSERT_FALSE(da.str().empty());
    EXPECT_EQ(da.str(), db.str());
}

TEST(FaultInjection, HugeSplitStormForcesSplitsUnderReclaim)
{
    // Random FIO on a THP machine fills DRAM with 2 MB units, so
    // reclaim meets clean compound heads; the armed site turns every
    // whole-unit reclaim decision into a forced split.
    FioRun r = makeHugeFioRun(system::PagingMode::osdp, PageMode::thp,
                              false, 43, 3000);
    r.plan->site(ht::FaultSite::hugeSplitStorm).rate = 1.0;
    r.plan->arm(ht::FaultSite::hugeSplitStorm);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));

    EXPECT_GT(r.plan->queries(ht::FaultSite::hugeSplitStorm), 0u);
    EXPECT_GT(r.plan->injections(ht::FaultSite::hugeSplitStorm), 0u);
    EXPECT_GT(r.sys->kernel().hugeSplits(), 0u);
    EXPECT_EQ(r.sys->kernel().hugeReclaims(), 0u);
    EXPECT_EQ(r.sys->totalAppOps(), 3000u);

    ht::quiesce(*r.sys);
    auto end = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(end.empty()) << end.front();
}

TEST(FaultInjection, StaleWideTlbDefersDelayableShootdowns)
{
    // Forced splits demote in place (same frames), so their range
    // shootdowns are delayable — the armed site defers each one,
    // leaving a stale-wide-entry window the machine must absorb.
    FioRun r = makeHugeFioRun(system::PagingMode::osdp, PageMode::thp,
                              false, 47, 3000);
    r.plan->site(ht::FaultSite::hugeSplitStorm).rate = 1.0;
    r.plan->arm(ht::FaultSite::hugeSplitStorm);
    r.plan->site(ht::FaultSite::staleWideTlb).rate = 1.0;
    r.plan->arm(ht::FaultSite::staleWideTlb);
    ASSERT_TRUE(r.sys->runUntilThreadsDone(seconds(30.0)));

    EXPECT_GT(r.plan->queries(ht::FaultSite::staleWideTlb), 0u);
    EXPECT_GT(r.plan->injections(ht::FaultSite::staleWideTlb), 0u);
    EXPECT_GT(r.sys->wideShootdownsDelayed(), 0u);
    EXPECT_EQ(r.sys->totalAppOps(), 3000u);

    ht::quiesce(*r.sys);
    auto end = ht::checkInvariants(*r.sys);
    EXPECT_TRUE(end.empty()) << end.front();
}

TEST(FaultInjection, HugeCoalesceAbortSkipsEveryPromotion)
{
    // Sequential FIO on an hwdp coalesce machine lays down contiguous
    // demand-paged runs; the disarmed twin proves they genuinely
    // promote, the armed run proves the abort site vetoes each one.
    FioRun armed = makeHugeFioRun(system::PagingMode::hwdp,
                                  PageMode::coalesce, true, 53);
    armed.plan->site(ht::FaultSite::hugeCoalesceAbort).rate = 1.0;
    armed.plan->arm(ht::FaultSite::hugeCoalesceAbort);
    FioRun clean = makeHugeFioRun(system::PagingMode::hwdp,
                                  PageMode::coalesce, true, 53);
    ASSERT_TRUE(armed.sys->runUntilThreadsDone(seconds(30.0)));
    ASSERT_TRUE(clean.sys->runUntilThreadsDone(seconds(30.0)));

    ASSERT_NE(armed.sys->kcoalesced(), nullptr);
    EXPECT_GT(armed.plan->queries(ht::FaultSite::hugeCoalesceAbort),
              0u);
    EXPECT_GT(armed.plan->injections(ht::FaultSite::hugeCoalesceAbort),
              0u);
    EXPECT_GT(armed.sys->kcoalesced()->promotionsAborted(), 0u);
    EXPECT_EQ(armed.sys->kcoalesced()->windowsPromoted(), 0u);
    EXPECT_EQ(armed.sys->kernel().hugePromotions(), 0u);
    EXPECT_GT(clean.sys->kcoalesced()->windowsPromoted(), 0u);

    ht::quiesce(*armed.sys);
    auto end = ht::checkInvariants(*armed.sys);
    EXPECT_TRUE(end.empty()) << end.front();
}

TEST(FaultInjection, SwSmuAndOsdpModesAttachTheirSites)
{
    // swsmu: SSD sites plus the (single) free page queue.
    FioRun sw = makeFioRun(system::PagingMode::swsmu, 31, 1200);
    ASSERT_TRUE(sw.sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(sw.plan->injections(ht::FaultSite::ssdReadError),
              0u);
    EXPECT_GT(sw.plan->queries(ht::FaultSite::fpqDry), 0u);
    EXPECT_EQ(sw.plan->queries(ht::FaultSite::pmshrFull), 0u);
    EXPECT_EQ(sw.sys->totalAppOps(), 1200u);

    // osdp: only the SSD-facing sites exist.
    FioRun os = makeFioRun(system::PagingMode::osdp, 37, 1200);
    ASSERT_TRUE(os.sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(os.plan->injections(ht::FaultSite::ssdReadError),
              0u);
    EXPECT_EQ(os.plan->queries(ht::FaultSite::fpqDry), 0u);
    EXPECT_EQ(os.plan->queries(ht::FaultSite::pmshrFull), 0u);
    EXPECT_EQ(os.sys->totalAppOps(), 1200u);
}

/**
 * @file
 * Tests for the page-table walker's LBA-bit classification and the
 * MMU's miss routing (exception vs SMU vs bounce).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;
using namespace hwdp::cpu;

namespace {

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    return cfg;
}

} // namespace

TEST(Walker, ClassifiesPresent)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16);
    Pfn pfn = sys.physMem().alloc();
    sys.kernel().installPage(*mf.as, *mf.vma, mf.vma->start, pfn, true);

    Walker w(sys.caches(), 0, 357);
    auto out = w.walk(*mf.as, mf.vma->start);
    EXPECT_EQ(out.kind, Walker::Classification::present);
    EXPECT_EQ(os::pte::pfnOf(out.entry), pfn);
    EXPECT_GT(out.latency, 0u);
}

TEST(Walker, SetsAccessedBit)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16);
    Pfn pfn = sys.physMem().alloc();
    sys.kernel().installPage(*mf.as, *mf.vma, mf.vma->start, pfn, true);

    Walker w(sys.caches(), 0, 357);
    w.walk(*mf.as, mf.vma->start);
    EXPECT_TRUE(os::pte::isAccessed(
        mf.as->pageTable().readPte(mf.vma->start)));
}

TEST(Walker, ClassifiesOsFault)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16); // plain mmap: empty PTEs
    Walker w(sys.caches(), 0, 357);
    auto out = w.walk(*mf.as, mf.vma->start);
    EXPECT_EQ(out.kind, Walker::Classification::osFault);
}

TEST(Walker, ClassifiesHwMiss)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 16); // fast mmap: LBA PTEs
    Walker w(sys.caches(), 0, 357);
    auto out = w.walk(*mf.as, mf.vma->start);
    EXPECT_EQ(out.kind, Walker::Classification::hwMiss);
    EXPECT_TRUE(os::pte::isLbaAugmented(out.entry));
    ASSERT_TRUE(out.refs.pte.valid());
    ASSERT_TRUE(out.refs.pmd.valid());
    ASSERT_TRUE(out.refs.pud.valid());
}

TEST(Mmu, HwMissRoutesToSmuAndResumes)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 64);

    struct OneRead : workloads::Workload
    {
        os::Vma *vma;
        bool issued = false;
        explicit OneRead(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (issued)
                return workloads::Op::makeDone();
            issued = true;
            return workloads::Op::makeMem(vma->start, false, true);
        }
        const char *label() const override { return "oneread"; }
    };
    auto *wl = sys.makeWorkload<OneRead>(mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    EXPECT_EQ(tc->hwHandledOps(), 1u);
    EXPECT_EQ(sys.core(0).mmu().hwMisses(), 1u);
    EXPECT_EQ(sys.core(0).mmu().osFaults(), 0u);
    EXPECT_EQ(sys.kernel().majorFaults(), 0u);
}

TEST(Mmu, LbaPteWithoutSmuFallsBackToOs)
{
    // OSDP machine, but hand-craft an LBA-augmented PTE: the MMU has
    // no SMU for socket 0 and must raise a normal exception; the OS
    // can always service a file-backed fault.
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    auto bdev = mf.file->device();
    mf.as->pageTable().writePte(
        mf.vma->start, os::pte::makeLbaAugmented(
                           bdev.sid, bdev.dev, mf.file->lbaOf(0),
                           mf.vma->prot));

    struct OneRead : workloads::Workload
    {
        os::Vma *vma;
        bool issued = false;
        explicit OneRead(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (issued)
                return workloads::Op::makeDone();
            issued = true;
            return workloads::Op::makeMem(vma->start, false, true);
        }
        const char *label() const override { return "oneread"; }
    };
    auto *wl = sys.makeWorkload<OneRead>(mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));
    EXPECT_EQ(tc->hwHandledOps(), 0u);
    EXPECT_EQ(sys.kernel().majorFaults(), 1u);
}

TEST(Mmu, TlbCachesTranslationAfterFault)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 64);

    struct TwoReads : workloads::Workload
    {
        os::Vma *vma;
        int n = 0;
        explicit TwoReads(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (n >= 2)
                return workloads::Op::makeDone();
            ++n;
            return workloads::Op::makeMem(vma->start + 64, false, true);
        }
        const char *label() const override { return "tworeads"; }
    };
    auto *wl = sys.makeWorkload<TwoReads>(mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));
    // Only the first access missed.
    EXPECT_EQ(tc->faultedOps(), 1u);
    EXPECT_EQ(sys.core(0).mmu().hwMisses(), 1u);
}

TEST(Mmu, AttachSmuValidatesSocketId)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    EXPECT_THROW(sys.core(0).mmu().attachSmu(8, nullptr), FatalError);
}

TEST(Mmu, SmuBounceFallsBackToOsFault)
{
    // Drain the free page queue and stop kpoold so the SMU must
    // bounce; the access still completes through the OS.
    system::MachineConfig cfg = tinyConfig(system::PagingMode::hwdp);
    cfg.kpooldEnabled = false;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 64);

    struct OneRead : workloads::Workload
    {
        os::Vma *vma;
        bool issued = false;
        explicit OneRead(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (issued)
                return workloads::Op::makeDone();
            issued = true;
            return workloads::Op::makeMem(vma->start, false, true);
        }
        const char *label() const override { return "oneread"; }
    };
    auto *wl = sys.makeWorkload<OneRead>(mf.vma);
    sys.addThread(*wl, 0, *mf.as);

    // No prime: start the scheduler manually with an empty queue.
    sys.kernel().scheduler().start();
    sys.eventQueue().runWhile(
        [&] { return sys.totalAppOps() < 1; }, seconds(1.0));

    EXPECT_EQ(sys.smu()->rejectedQueueEmpty(), 1u);
    EXPECT_EQ(sys.core(0).mmu().smuRejections(), 1u);
    EXPECT_EQ(sys.kernel().smuFallbackFaults(), 1u);
    EXPECT_EQ(sys.kernel().majorFaults(), 1u);
}

TEST(WalkerPwc, UpperLevelWalksHitAfterFirstWalk)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16);
    for (unsigned i = 0; i < 2; ++i) {
        Pfn pfn = sys.physMem().alloc();
        sys.kernel().installPage(*mf.as, *mf.vma,
                                 mf.vma->start + i * pageSize, pfn, true);
    }

    Walker w(sys.caches(), 0, 357);
    auto o1 = w.walk(*mf.as, mf.vma->start);
    ASSERT_EQ(o1.kind, Walker::Classification::present);
    EXPECT_EQ(w.pwcMisses(), 2u); // PUD and PMD entries
    EXPECT_EQ(w.pwcHits(), 0u);

    // Adjacent page: same PUD/PMD entries, so both reads hit the PWC
    // and only the leaf PTE read is charged to the hierarchy.
    auto o2 = w.walk(*mf.as, mf.vma->start + pageSize);
    ASSERT_EQ(o2.kind, Walker::Classification::present);
    EXPECT_EQ(w.pwcHits(), 2u);
    EXPECT_EQ(w.pwcMisses(), 2u);
    EXPECT_LT(o2.latency, o1.latency);
}

TEST(WalkerPwc, ZeroEntriesDisablesCaching)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16);
    Pfn pfn = sys.physMem().alloc();
    sys.kernel().installPage(*mf.as, *mf.vma, mf.vma->start, pfn, true);

    Walker w(sys.caches(), 0, 357, 0);
    for (int i = 0; i < 3; ++i) {
        auto out = w.walk(*mf.as, mf.vma->start);
        EXPECT_EQ(out.kind, Walker::Classification::present);
    }
    EXPECT_EQ(w.pwcHits(), 0u);
    EXPECT_TRUE(w.pwcEmpty());
}

TEST(WalkerPwc, ShootdownOnReclaimUnmapInvalidates)
{
    // Reclaim's unmap path must shoot down the PWC along with the TLB:
    // the upper-level LBA summary bits it rewrites are exactly what
    // the PWC caches the timing of.
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 16);
    Pfn pfn = sys.physMem().alloc();
    sys.kernel().installPage(*mf.as, *mf.vma, mf.vma->start, pfn, true);

    auto &w = sys.core(0).mmu().walker();
    ASSERT_EQ(w.walk(*mf.as, mf.vma->start).kind,
              Walker::Classification::present);
    ASSERT_FALSE(w.pwcEmpty());

    ASSERT_FALSE(sys.kernel().rmap().unmapForEviction(
        sys.kernel().page(pfn))); // clean page
    EXPECT_TRUE(w.pwcEmpty());
}

TEST(WalkerPwc, KptedMetadataSyncInvalidates)
{
    // kpted's metadata sync clears the upper-level LBA bits, so the
    // walker must re-read (and re-charge) those entries afterwards.
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 16);
    Pfn pfn = sys.physMem().alloc();
    sys.kernel().installHardwareHandled(*mf.as, *mf.vma, mf.vma->start,
                                        pfn);

    auto &w = sys.core(0).mmu().walker();
    ASSERT_EQ(w.walk(*mf.as, mf.vma->start).kind,
              Walker::Classification::present);
    ASSERT_FALSE(w.pwcEmpty());

    auto refs = mf.as->pageTable().walkRefs(mf.vma->start, false);
    sys.kernel().syncHardwareHandledPte(*mf.as, mf.vma->start, refs.pte);
    EXPECT_TRUE(w.pwcEmpty());
}

#include "system/machine_config.hh"

#include <sstream>

#include "ssd/ssd_profile.hh"

namespace hwdp::system {

const char *
pagingModeName(PagingMode mode)
{
    switch (mode) {
      case PagingMode::osdp: return "OSDP";
      case PagingMode::hwdp: return "HWDP";
      case PagingMode::swsmu: return "SW-only";
    }
    return "?";
}

const char *
numaPlacementName(NumaPlacement p)
{
    switch (p) {
      case NumaPlacement::firstTouch: return "first-touch";
      case NumaPlacement::roundRobin: return "round-robin";
    }
    return "?";
}

const char *
pageModeName(PageMode mode)
{
    switch (mode) {
      case PageMode::off: return "off (4 KB only)";
      case PageMode::thp: return "thp (2 MB transparent huge pages)";
      case PageMode::napot: return "napot (64 KB contiguous-PTE reach)";
      case PageMode::coalesce:
        return "coalesce (thp + napot + kcoalesced)";
    }
    return "?";
}

std::string
MachineConfig::describe() const
{
    auto prof = ssd::profileByName(ssdProfile);
    std::ostringstream os;
    os << "paging mode      : " << pagingModeName(mode) << '\n'
       << "CPU              : " << (1e6 / static_cast<double>(cyclePeriod))
       << " MHz, " << nPhysical << " physical / " << nLogical
       << " logical cores (SMT)\n"
       << "caches           : L1I " << cache.l1iBytes / 1024 << "K, L1D "
       << cache.l1dBytes / 1024 << "K, L2 " << cache.l2Bytes / 1024
       << "K, LLC " << cache.llcBytes / (1024 * 1024) << "M\n"
       << "memory           : " << (memFrames * pageSize) / (1024 * 1024)
       << " MB (" << memFrames << " frames)\n"
       << "storage          : " << prof.name << ", unloaded 4KB read "
       << toMicroseconds(prof.unloadedRead4k()) << " us, "
       << prof.channels << " channels\n"
       << "PMSHR            : " << smu.pmshrEntries << " entries\n"
       << "free page queue  : " << smu.freeQueueCapacity
       << " entries, prefetch buffer " << smu.prefetchDepth << '\n'
       << "kpoold           : "
       << (kpooldEnabled ? "enabled" : "disabled") << ", period "
       << toMicroseconds(kpooldPeriod) / 1000.0 << " ms\n"
       << "kpted            : period "
       << toMicroseconds(kptedPeriod) / 1000.0 << " ms, "
       << (kptedGuidedScan ? "guided" : "full") << " scan\n";
    // Shown only when engaged, so the default dump stays a pure
    // Table II reproduction (and the checkpoint config hash — FNV over
    // this text — is unchanged for single-socket machines).
    if (sockets > 1)
        os << "sockets          : " << sockets << " x "
           << coresPerSocket() << " cores, " << nDevices
           << " NVMe/socket, remote DRAM +" << numaRemoteExtraCycles
           << " cyc, remote SMU +"
           << toNanoseconds(numaRemoteSmuLatency) << " ns, "
           << numaPlacementName(numaPlacement) << " placement\n";
    // Shown only when engaged, keeping the default dump (and the
    // checkpoint config hash) identical to the 4 KB-only machine.
    if (pageMode != PageMode::off) {
        os << "page mode        : " << pageModeName(pageMode);
        if (pageMode == PageMode::coalesce)
            os << ", kcoalesced period "
               << toMicroseconds(kcoalescePeriod) / 1000.0 << " ms, "
               << kcoalesceBatch << " windows/pass";
        os << '\n';
    }
    // Host-only knob: shown only when engaged, so the default dump
    // stays a pure Table II reproduction.
    if (simThreads > 1)
        os << "host sim threads : " << simThreads
           << " (parallel simulation mode, bit-identical)\n";
    // Host-only knob: shown only when the reference path is selected,
    // so the default dump (and the checkpoint config hash) keeps the
    // Table II text while fast-on and fast-off blobs never collide
    // (their event-queue serial numbers legitimately differ).
    if (!faultFastPath)
        os << "fault fast path  : off (event-per-hop reference)\n";
    return os.str();
}

} // namespace hwdp::system

/**
 * @file
 * Software-emulated SMU (the paper's real-machine prototype, VI-A).
 *
 * A kernel-resident emulation of the SMU used to evaluate HWDP on a
 * real x86 machine and, in Figure 17, as the "SW-only" baseline the
 * hardware is compared against. At the early stage of the page fault
 * handler a routine checks the PTE's LBA bit; if set it jumps to a
 * function that emulates the SMU — software PMSHR check/insert, NVMe
 * command construction on an isolated queue — and then waits on the
 * completion with monitor/mwait. The interrupt handler merely touches
 * the monitored address; the emulation resumes, completes the miss
 * and updates the PTE exactly as the hardware would (LBA bit kept,
 * metadata deferred to kpted).
 */

#ifndef HWDP_CORE_SOFTWARE_SMU_HH
#define HWDP_CORE_SOFTWARE_SMU_HH

#include <unordered_map>
#include <vector>

#include "core/free_page_queue.hh"
#include "os/kernel.hh"
#include "ssd/ssd_device.hh"

namespace hwdp::core {

class SoftwareSmu : public sim::SimObject
{
  public:
    SoftwareSmu(std::string name, sim::EventQueue &eq, os::Kernel &kernel,
                FreePageQueue &fpq);

    /** Allocate this emulation's isolated queue pair on a device. */
    void configureDevice(unsigned dev_id, ssd::SsdDevice *dev,
                         std::uint16_t queue_depth = 1024);

    /** Register as the kernel's early-fault interceptor. */
    void install();

    /**
     * One emulated-SMU fault check, callable by an external
     * dispatcher: multi-socket machines run one emulation per socket
     * and System installs a single interceptor that routes by the
     * PTE's socket-id field instead of calling install() on any one
     * of them. Semantics identical to the installed interceptor.
     */
    bool
    tryIntercept(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                 os::pte::Entry e, std::function<void()> resume)
    {
        return intercept(t, as, vaddr, e, std::move(resume));
    }

    std::uint64_t handled() const { return statHandled.value(); }
    std::uint64_t coalesced() const { return statCoalesced.value(); }
    std::uint64_t queueEmptyBounces() const
    {
        return statQueueEmpty.value();
    }
    std::uint64_t ioRetries() const { return statIoRetry.value(); }
    std::uint64_t rejectedIoError() const
    {
        return statRejectIoError.value();
    }
    sim::Histogram &missLatencyUs() { return statLatency; }

    /**
     * Checkpoint the cid allocator and counters. In-flight emulated
     * misses hold closures, so both tables must be empty (quiesced);
     * the device slots are verified.
     */
    void serialize(sim::Serializer &s);

  private:
    struct DeviceSlot
    {
        bool valid = false;
        ssd::SsdDevice *dev = nullptr;
        std::uint16_t qid = 0;
    };

    struct Inflight
    {
        os::Thread *t;
        os::AddressSpace *as;
        VAddr vaddr;
        Pfn pfn;
        Tick started;
        unsigned devId = 0;
        Lba lba = 0;
        bool retried = false;
        std::function<void()> resume;
        /** Coalesced faulters: (thread, resume). */
        std::vector<std::pair<os::Thread *, std::function<void()>>>
            waiters;
    };

    os::Kernel &kernel;
    FreePageQueue &fpq;
    std::vector<DeviceSlot> devices;
    std::unordered_map<std::uint16_t, Inflight> inflight; // by cid
    std::unordered_map<std::uint64_t, std::uint16_t> byPage;
    std::uint16_t nextCid = 0;

    sim::Counter &statHandled;
    sim::Counter &statCoalesced;
    sim::Counter &statQueueEmpty;
    sim::Counter &statIoRetry;
    sim::Counter &statRejectIoError;
    sim::Histogram &statLatency;

    bool intercept(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                   os::pte::Entry e, std::function<void()> resume);
    void onInterrupt(std::uint16_t cid, std::uint16_t status);

    /** Build + submit the read command, then mwait on @p core. */
    void submitRead(unsigned dev_id, std::uint16_t cid, Lba lba,
                    Pfn pfn, unsigned core);

    static std::uint64_t pageKey(const os::AddressSpace &as, VAddr va);
};

} // namespace hwdp::core

#endif // HWDP_CORE_SOFTWARE_SMU_HH

/**
 * @file
 * Parallel sweep harness for the figure/table benches.
 *
 * Every bench point builds its own system::System, and a System owns
 * its EventQueue, RNG and every component outright — independent
 * configurations share no mutable state. SweepRunner exploits that:
 * it fans a list of independent bench points out over a host thread
 * pool and returns results in input order, so a parallel sweep is
 * byte-identical to the sequential one (per-run RNG seeds live in the
 * MachineConfig, not in any global).
 *
 * Parallelism defaults to the host's hardware concurrency and can be
 * pinned with the HWDP_BENCH_JOBS environment variable (e.g. for
 * reproducible timing or constrained CI boxes).
 */

#ifndef HWDP_BENCH_SWEEP_RUNNER_HH
#define HWDP_BENCH_SWEEP_RUNNER_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/host_timing.hh"

namespace hwdp::bench {

/** Sweep parallelism: HWDP_BENCH_JOBS, else hardware concurrency. */
inline unsigned
sweepJobs()
{
    if (const char *env = std::getenv("HWDP_BENCH_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc ? hc : 1;
}

class SweepRunner
{
  public:
    /** @param jobs worker count; 0 resolves via sweepJobs(). */
    explicit SweepRunner(unsigned jobs = 0)
        : nJobs(jobs ? jobs : sweepJobs())
    {
    }

    unsigned jobs() const { return nJobs; }

    /**
     * Per-job host cost, recorded when map() is given a timing sink:
     * wall clock plus the executing thread's own CPU time
     * (RUSAGE_THREAD) — the steal-immune number the BENCH_*.json
     * protocol quotes, since co-tenant load inflates wall but not the
     * CPU the job was actually granted.
     */
    struct JobTiming
    {
        double wallSec = 0;
        double cpuSec = 0;
    };

    /**
     * Evaluate fn(0) .. fn(n-1) and return the results indexed by
     * input position regardless of completion order. fn must not
     * touch shared mutable state (build a fresh System per call).
     * The first exception thrown by any point is rethrown here after
     * all workers drain.
     * @param timings Optional: resized to n and filled with each
     *                job's wall / thread-CPU cost, indexed like the
     *                results.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn,
        std::vector<JobTiming> *timings = nullptr) const
    {
        std::vector<R> results(n);
        if (timings)
            timings->assign(n, JobTiming{});
        if (n == 0)
            return results;
        auto runOne = [&](std::size_t i) {
            if (!timings) {
                results[i] = fn(i);
                return;
            }
            double cpu0 = threadCpuSeconds();
            auto t0 = std::chrono::steady_clock::now();
            results[i] = fn(i);
            auto t1 = std::chrono::steady_clock::now();
            (*timings)[i] = {
                std::chrono::duration<double>(t1 - t0).count(),
                threadCpuSeconds() - cpu0};
        };
        unsigned workers =
            static_cast<unsigned>(std::min<std::size_t>(nJobs, n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                runOne(i);
            return results;
        }

        std::atomic<std::size_t> next{0};
        std::exception_ptr error;
        std::mutex errorLock;
        auto worker = [&] {
            while (true) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    runOne(i);
                } catch (...) {
                    std::lock_guard<std::mutex> g(errorLock);
                    if (!error)
                        error = std::current_exception();
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
        if (error)
            std::rethrow_exception(error);
        return results;
    }

  private:
    unsigned nJobs;
};

} // namespace hwdp::bench

#endif // HWDP_BENCH_SWEEP_RUNNER_HH

#include "os/scheduler.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
Thread::serializeState(sim::Serializer &s)
{
    if (s.saving()) {
        if (st == State::running || resumeAction)
            throw sim::SerializeError(
                "checkpoint: thread '" + nm +
                "' is mid-operation; quiesce the machine first");
    }
    s.io(st);
}

void
Scheduler::serialize(sim::Serializer &s)
{
    s.section("scheduler");
    std::uint32_t n = nLogical;
    s.check(n, "logical core count");
    for (unsigned c = 0; c < nLogical; ++c) {
        CoreState &cs = cores[c];
        if (s.saving() &&
            (cs.cur || !cs.runq.empty() || !cs.kwork.empty() ||
             cs.inKernelWork || cs.skipSwitchCharge))
            throw sim::SerializeError(
                "checkpoint: core " + std::to_string(c) +
                " is busy; quiesce the machine first");
        if (s.loading()) {
            // Discard the fresh-boot run queue: its threads were
            // registered by the boot recipe but never dispatched;
            // their states are restored by their own serializers.
            cs.cur = nullptr;
            cs.runq.clear();
            cs.kwork.clear();
            cs.inKernelWork = false;
            cs.skipSwitchCharge = nullptr;
        }
        s.io(cs.hwStall);
        s.io(cs.started);
    }
    stats().serialize(s);
}

Scheduler::Scheduler(sim::EventQueue &eq, unsigned n_logical,
                     unsigned n_physical, KernelExec &kexec,
                     double smt_share)
    : sim::SimObject("sched", eq), nLogical(n_logical), nPhys(n_physical),
      kexec(kexec), smtShare(smt_share), cores(n_logical),
      statSwitches(stats().counter("context_switches",
                                   "thread context switches performed")),
      statKernelWorkItems(stats().counter(
          "kernel_work_items", "irq/softirq work items executed"))
{
    if (n_logical == 0 || n_physical == 0 || n_physical > n_logical)
        fatal("scheduler: bad core topology ", n_logical, "/", n_physical);
    if (n_logical % n_physical != 0)
        fatal("scheduler: logical cores must be a multiple of physical");
}

void
Scheduler::addThread(Thread *t)
{
    if (t->core() >= nLogical)
        fatal("thread '", t->name(), "' pinned to bad core ", t->core());
    if (t->st != Thread::State::created)
        panic("thread '", t->name(), "' added twice");
    t->st = Thread::State::runnable;
    cores[t->core()].runq.push_back(t);
    if (cores[t->core()].started)
        dispatch(t->core());
}

void
Scheduler::start()
{
    for (unsigned c = 0; c < nLogical; ++c) {
        cores[c].started = true;
        dispatch(c);
    }
}

bool
Scheduler::coreBusy(unsigned core) const
{
    const CoreState &cs = cores[core];
    return cs.cur != nullptr || cs.inKernelWork;
}

void
Scheduler::setHwStalled(unsigned core, bool stalled)
{
    cores[core].hwStall = stalled;
}

double
Scheduler::widthShare(unsigned core) const
{
    if (nLogical == nPhys)
        return 1.0; // SMT disabled
    unsigned sib = siblingOf(core);
    const CoreState &ss = cores[sib];
    bool sib_consuming =
        ss.inKernelWork || (ss.cur != nullptr && !ss.hwStall);
    return sib_consuming ? smtShare : 1.0;
}

void
Scheduler::block(Thread *t)
{
    CoreState &cs = cores[t->core()];
    if (cs.cur != t)
        panic("block: thread '", t->name(), "' is not current");
    cs.cur = nullptr;
    t->st = Thread::State::blocked;

    // Switch-out: schedule() + __switch_to to the next thread or the
    // idle task. The Figure 3 "context switch" cost.
    ++statSwitches;
    unsigned core = t->core();
    Tick dur = kexec.run(physCoreOf(core), phases::contextSwitch);
    eq.postIn(dur, [this, core] { dispatch(core); },
                        "sched.switchout");
}

void
Scheduler::yield(Thread *t)
{
    CoreState &cs = cores[t->core()];
    if (cs.cur != t)
        panic("yield: thread '", t->name(), "' is not current");
    cs.cur = nullptr;
    t->st = Thread::State::runnable;
    cs.runq.push_back(t);
    dispatch(t->core());
}

void
Scheduler::finish(Thread *t)
{
    CoreState &cs = cores[t->core()];
    if (cs.cur != t)
        panic("finish: thread '", t->name(), "' is not current");
    cs.cur = nullptr;
    t->st = Thread::State::finished;
    dispatch(t->core());
}

void
Scheduler::preemptForKernelWork(Thread *t)
{
    CoreState &cs = cores[t->core()];
    if (cs.cur != t)
        panic("preempt: thread '", t->name(), "' is not current");
    cs.cur = nullptr;
    t->st = Thread::State::runnable;
    cs.runq.push_front(t);
    cs.skipSwitchCharge = t;
    dispatch(t->core());
}

void
Scheduler::wake(Thread *t)
{
    if (t->st != Thread::State::blocked) {
        // Spurious wakeups happen (e.g. an I/O completes after a
        // munmap barrier already woke the thread); they are benign.
        return;
    }
    t->st = Thread::State::runnable;
    cores[t->core()].runq.push_back(t);
    dispatch(t->core());
}

void
Scheduler::queueKernelWork(unsigned core,
                           std::vector<const KernelPhase *> phases,
                           std::function<void()> done)
{
    CoreState &cs = cores[core];
    cs.kwork.push_back(KernelWork{std::move(phases), std::move(done)});
    // An idle core picks the work up immediately; a busy one at its
    // next operation boundary (threads poll kernelWorkPending()).
    dispatch(core);
}

bool
Scheduler::kernelWorkPending(unsigned core) const
{
    return !cores[core].kwork.empty();
}

void
Scheduler::runPhases(unsigned core,
                     std::vector<const KernelPhase *> phases,
                     std::function<void()> done)
{
    runPhaseSeq(core, std::move(phases), 0, std::move(done));
}

void
Scheduler::runPhaseSeq(unsigned core,
                       std::vector<const KernelPhase *> phases,
                       std::size_t idx, std::function<void()> done)
{
    if (idx >= phases.size()) {
        done();
        return;
    }
    Tick dur = kexec.run(physCoreOf(core), *phases[idx]);
    // Kernel instructions compete for issue slots with the SMT
    // sibling just like user instructions do (Figure 16's OSDP side).
    dur = static_cast<Tick>(static_cast<double>(dur) /
                            widthShare(core));
    eq.postIn(dur,
                        [this, core, phases = std::move(phases), idx,
                         done = std::move(done)]() mutable {
                            runPhaseSeq(core, std::move(phases), idx + 1,
                                        std::move(done));
                        },
                        "sched.phase");
}

void
Scheduler::runKernelWorkItem(unsigned core)
{
    CoreState &cs = cores[core];
    KernelWork work = std::move(cs.kwork.front());
    cs.kwork.pop_front();
    ++statKernelWorkItems;
    cs.inKernelWork = true;
    runPhases(core, std::move(work.phases),
              [this, core, done = std::move(work.done)] {
                  if (done)
                      done();
                  cores[core].inKernelWork = false;
                  dispatch(core);
              });
}

void
Scheduler::dispatch(unsigned core)
{
    CoreState &cs = cores[core];
    if (!cs.started || cs.cur != nullptr || cs.inKernelWork)
        return;

    if (!cs.kwork.empty()) {
        runKernelWorkItem(core);
        return;
    }

    if (cs.runq.empty())
        return; // idle

    Thread *t = cs.runq.front();
    cs.runq.pop_front();
    t->st = Thread::State::running;
    cs.cur = t;

    if (cs.skipSwitchCharge == t) {
        // Resuming after an interrupt borrowed the context: no switch.
        cs.skipSwitchCharge = nullptr;
        t->run();
        return;
    }

    // Switch-in: scheduling the thread onto the CPU.
    ++statSwitches;
    Tick dur = kexec.run(physCoreOf(core), phases::contextSwitch);
    eq.postIn(dur,
                        [this, t, core] {
                            // The thread may have been torn down only
                            // via finish(); it is still current here.
                            if (cores[core].cur == t)
                                t->run();
                        },
                        "sched.switchin");
}

} // namespace hwdp::os

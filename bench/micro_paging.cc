/**
 * @file
 * Demand-paging event-path microbench: host cost of the fault fast
 * path and the per-device service lanes (BENCH_paging_path.json).
 *
 * Two scenarios, both to completion on hwdp machines:
 *
 *  - Fault storm (serial): FIO random reads over a dataset 32x memory,
 *    so nearly every op walks the full walker-miss -> SMU -> PMSHR ->
 *    NVMe chain. Run with the fast path on and off at simThreads=1;
 *    the stats dumps must match byte for byte before any timing is
 *    quoted, and the CPU-seconds ratio is the serial win.
 *
 *  - Steady-state lanes: a 2-socket machine (one SMU/NVMe/SSD complex
 *    per socket) at simThreads {1, 2, 4}; per-device SSD service
 *    batches fan out as CAS-claimed lane tasks. State must hash
 *    identically at every point — the lanes are host-side only.
 *
 * Timing is the BENCH_*.json protocol (host_timing.hh): median of N
 * repeats, steal-immune process CPU seconds from getrusage beside the
 * wall clock. The paging-path counter table prints next to the
 * numbers so the event-elision the timing claims is visible.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/host_timing.hh"
#include "testing/machine_differ.hh"

using namespace hwdp;

namespace {

struct Out
{
    std::uint64_t stateHash = 0;
    Tick finalTick = 0;
    std::uint64_t hwHandled = 0;
    std::string stats;
    std::string pagingTable;
};

Out
runFaultStorm(bool fast)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.memFrames = 32 * 1024;
    cfg.faultFastPath = fast;
    system::System sys(cfg);
    auto mf = sys.mapDataset("storm.dat", 32 * cfg.memFrames);
    for (unsigned t = 0; t < 4; ++t) {
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma, 6000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));
    testing::quiesce(sys);

    Out o;
    auto snap = testing::snapshot(sys, "micro_paging");
    o.stateHash = snap.stateHash;
    o.finalTick = sys.now();
    for (auto &tc : sys.threads())
        o.hwHandled += tc->hwHandledOps();
    std::ostringstream os;
    testing::dumpMachineStats(sys, os);
    o.stats = os.str();
    o.pagingTable = metrics::pagingPathTable(sys).toString();
    return o;
}

Out
runLanes(unsigned sim_threads)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.sockets = 2;
    cfg.simThreads = sim_threads;
    system::System sys(cfg);
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        auto mf = sys.mapDataset("lanes" + std::to_string(s),
                                 16 * 1024, nullptr, s);
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma, 4000);
        sys.addThread(*wl, s * cfg.coresPerSocket(), *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));
    testing::quiesce(sys);

    Out o;
    auto snap = testing::snapshot(sys, "micro_paging_lanes");
    o.stateHash = snap.stateHash;
    o.finalTick = sys.now();
    if (sim_threads > 1)
        o.pagingTable = metrics::pagingPathTable(sys).toString();
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned repeats = 3;
    if (argc > 1)
        repeats = static_cast<unsigned>(std::atoi(argv[1]));
    if (repeats == 0)
        repeats = 1;

    unsigned host = std::thread::hardware_concurrency();
    metrics::banner("Paging-path microbench: fault fast path + lanes",
                    "stats must be byte-identical before timing counts");
    std::printf("host hardware concurrency: %u, repeats: %u\n\n", host,
                repeats);

    // ---- Scenario 1: serial fault storm, fast on vs off ----------------
    Out fastOut, legacyOut;
    bench::TimedRun fastT = bench::medianOfRuns(
        repeats, [&] { fastOut = runFaultStorm(true); });
    bench::TimedRun legacyT = bench::medianOfRuns(
        repeats, [&] { legacyOut = runFaultStorm(false); });

    bool stats_identical = fastOut.stats == legacyOut.stats &&
                           fastOut.stateHash == legacyOut.stateHash &&
                           fastOut.finalTick == legacyOut.finalTick;
    double speedup =
        fastT.cpuSec > 0 ? legacyT.cpuSec / fastT.cpuSec : 0.0;

    metrics::Table st({"fault storm", "cpu s (median)",
                       "wall s (median)", "hw faults"});
    st.addRow({"fast path on", metrics::Table::num(fastT.cpuSec, 3),
               metrics::Table::num(fastT.wallSec, 3),
               std::to_string(fastOut.hwHandled)});
    st.addRow({"event-per-hop", metrics::Table::num(legacyT.cpuSec, 3),
               metrics::Table::num(legacyT.wallSec, 3),
               std::to_string(legacyOut.hwHandled)});
    st.print();
    std::printf("\ncpu speedup: %.2fx   stats byte-identical: %s\n\n",
                speedup, stats_identical ? "yes" : "NO");
    std::fputs(fastOut.pagingTable.c_str(), stdout);

    // ---- Scenario 2: lanes, simThreads sweep on 2 sockets --------------
    const unsigned points[] = {1, 2, 4};
    std::vector<bench::TimedRun> laneT(std::size(points));
    std::vector<Out> laneOut(std::size(points));
    for (std::size_t p = 0; p < std::size(points); ++p) {
        laneT[p] = bench::medianOfRuns(
            repeats, [&] { laneOut[p] = runLanes(points[p]); });
    }
    bool lanes_identical = true;
    for (std::size_t p = 1; p < std::size(points); ++p) {
        if (laneOut[p].stateHash != laneOut[0].stateHash ||
            laneOut[p].finalTick != laneOut[0].finalTick)
            lanes_identical = false;
    }

    std::printf("\n");
    metrics::Table lt({"simThreads", "cpu s (median)", "wall s (median)",
                       "wall speedup"});
    for (std::size_t p = 0; p < std::size(points); ++p) {
        lt.addRow({std::to_string(points[p]),
                   metrics::Table::num(laneT[p].cpuSec, 3),
                   metrics::Table::num(laneT[p].wallSec, 3),
                   metrics::Table::num(laneT[0].wallSec /
                                       laneT[p].wallSec) +
                       "x"});
    }
    lt.print();
    std::printf("\nbit-identical state across simThreads: %s\n\n",
                lanes_identical ? "yes" : "NO — DETERMINISM VIOLATION");
    std::fputs(laneOut.back().pagingTable.c_str(), stdout);

    std::printf("\n{\"bench\": \"micro_paging\", \"host_cores\": %u, "
                "\"repeats\": %u, \"storm_fast_cpu_s\": %.3f, "
                "\"storm_legacy_cpu_s\": %.3f, \"fast_speedup\": %.2f, "
                "\"stats_identical\": %s",
                host, repeats, fastT.cpuSec, legacyT.cpuSec, speedup,
                stats_identical ? "true" : "false");
    for (std::size_t p = 0; p < std::size(points); ++p) {
        std::printf(", \"lanes_t%u_wall_s\": %.3f, "
                    "\"lanes_t%u_cpu_s\": %.3f",
                    points[p], laneT[p].wallSec, points[p],
                    laneT[p].cpuSec);
    }
    std::printf(", \"lanes_identical\": %s}\n",
                lanes_identical ? "true" : "false");
    return stats_identical && lanes_identical ? 0 : 1;
}

/**
 * @file
 * Figure 16: polling (HWDP pipeline stall) vs context switching (OSDP)
 * under SMT — one FIO thread co-scheduled with one CPU-bound thread on
 * the two hardware threads of a physical core.
 *
 * Paper: HWDP improves FIO throughput by more than 1.72x, the FIO
 * thread executes fewer total (user+kernel) instructions, and every
 * co-running SPEC workload achieves higher IPC because the stalled
 * FIO thread consumes no issue slots while the SMU works.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Run
{
    double fioOps;        ///< FIO application ops completed.
    double fioUserInstr;  ///< FIO user instructions.
    double kernelInstr;   ///< Kernel instructions (FIO's fault work).
    double specIpc;       ///< Co-runner user IPC.
};

Run
runPair(system::PagingMode mode, const std::string &kernel_name)
{
    auto cfg = bench::paperConfig(mode);
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 8 * bench::defaultMemFrames);

    // Logical core 0 and its SMT sibling share physical core 0.
    unsigned sibling = sys.kernel().scheduler().siblingOf(0);

    auto *fio = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 0);
    auto *fio_tc = sys.addThread(*fio, 0, *mf.as);

    auto *spec =
        sys.makeWorkload<workloads::SpecLikeWorkload>(kernel_name, 0);
    auto *spec_as = sys.kernel().createAddressSpace();
    auto *spec_tc = sys.addThread(*spec, sibling, *spec_as);

    sys.runFor(milliseconds(60.0));

    Run r;
    r.fioOps = static_cast<double>(fio_tc->appOps());
    r.fioUserInstr = static_cast<double>(fio_tc->userInstructions());
    r.kernelInstr =
        static_cast<double>(sys.kernel().kexec().totalInstructions());
    r.specIpc = spec_tc->userIpc();
    return r;
}

} // namespace

int
main()
{
    metrics::banner("Figure 16: SMT co-run, FIO + CPU-bound thread",
                    "paper: FIO throughput > 1.72x, fewer FIO "
                    "instructions, higher SPEC IPC under HWDP");

    Table t({"co-runner", "FIO ops gain", "FIO+kernel instr ratio",
             "SPEC IPC gain"});
    // One bench point per (co-runner kernel, paging mode); all are
    // independent machines, so sweep them in parallel.
    const auto &kernels = workloads::SpecLikeWorkload::kernelNames();
    bench::SweepRunner runner;
    auto runs = runner.map<Run>(kernels.size() * 2, [&](std::size_t i) {
        return runPair(i % 2 ? system::PagingMode::hwdp
                             : system::PagingMode::osdp,
                       kernels[i / 2]);
    });
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
        const std::string &k = kernels[ki];
        const Run &osdp = runs[ki * 2];
        const Run &hwdp = runs[ki * 2 + 1];
        double instr_ratio =
            (hwdp.fioUserInstr + hwdp.kernelInstr) /
            (osdp.fioUserInstr + osdp.kernelInstr);
        t.addRow({k, Table::num(hwdp.fioOps / osdp.fioOps) + "x",
                  Table::num(instr_ratio),
                  "+" + metrics::Table::pct(hwdp.specIpc / osdp.specIpc -
                                            1.0)});
    }
    t.print();
    std::printf("\npaper shape: ops gain >= 1.72x everywhere; "
                "instruction ratio < 1 (up to -42.4%%); SPEC IPC "
                "always improves\n");
    return 0;
}

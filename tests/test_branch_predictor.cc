/**
 * @file
 * Tests for the gshare branch predictor.
 */

#include <gtest/gtest.h>

#include "mem/branch_predictor.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::mem;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (!bp.predictAndUpdate(0x400000, true, ExecMode::user))
            ++wrong;
    }
    // Warmup only: the shifting history register visits ~14 fresh
    // pattern-table entries before saturating, each needing a couple
    // of updates to train.
    EXPECT_LE(wrong, 40);
    // Steady state: the trained branch never mispredicts again.
    int late_wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (!bp.predictAndUpdate(0x400000, true, ExecMode::user))
            ++late_wrong;
    }
    EXPECT_EQ(late_wrong, 0);
}

TEST(BranchPredictor, LearnsStronglyBiasedBranch)
{
    BranchPredictor bp;
    sim::Rng rng(5);
    std::uint64_t miss = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        bool taken = rng.chance(0.95);
        if (!bp.predictAndUpdate(0x400100, taken, ExecMode::user))
            ++miss;
    }
    // Should approach the 5% noise floor (some extra from history
    // aliasing).
    EXPECT_LT(static_cast<double>(miss) / n, 0.12);
}

TEST(BranchPredictor, RandomBranchIsUnpredictable)
{
    BranchPredictor bp;
    sim::Rng rng(9);
    std::uint64_t miss = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (!bp.predictAndUpdate(0x400200, rng.chance(0.5),
                                 ExecMode::user))
            ++miss;
    }
    EXPECT_NEAR(static_cast<double>(miss) / n, 0.5, 0.05);
}

TEST(BranchPredictor, ModesAreCountedSeparately)
{
    BranchPredictor bp;
    bp.predictAndUpdate(0x1, true, ExecMode::user);
    bp.predictAndUpdate(0x2, true, ExecMode::kernel);
    bp.predictAndUpdate(0x3, true, ExecMode::kernel);
    EXPECT_EQ(bp.lookups(ExecMode::user), 1u);
    EXPECT_EQ(bp.lookups(ExecMode::kernel), 2u);
}

TEST(BranchPredictor, KernelInterferenceHurtsUserAccuracy)
{
    // Train a user branch, then run a burst of random-outcome kernel
    // branches; the user branch must mispredict more right after.
    BranchPredictor bp;
    sim::Rng rng(13);
    auto run_user = [&](int n) {
        std::uint64_t miss = 0;
        for (int i = 0; i < n; ++i) {
            if (!bp.predictAndUpdate(0x400300 + (i % 16) * 16, true,
                                     ExecMode::user))
                ++miss;
        }
        return miss;
    };
    run_user(5000); // train
    std::uint64_t clean = run_user(2000);

    for (int i = 0; i < 5000; ++i) {
        bp.predictAndUpdate(0xffffffff80000000ULL + (i % 512) * 16,
                            rng.chance(0.5), ExecMode::kernel);
    }
    std::uint64_t polluted = run_user(2000);
    EXPECT_GT(polluted, clean);
}

TEST(BranchPredictor, ResetClearsState)
{
    BranchPredictor bp;
    bp.predictAndUpdate(0x1, true, ExecMode::user);
    bp.reset();
    EXPECT_EQ(bp.lookups(ExecMode::user), 0u);
    EXPECT_EQ(bp.mispredicts(ExecMode::user), 0u);
}

TEST(BranchPredictor, UnreasonableHistoryRejected)
{
    EXPECT_THROW(BranchPredictor(0), FatalError);
    EXPECT_THROW(BranchPredictor(30), FatalError);
}

/**
 * @file
 * Extent-based file system model.
 *
 * Maps (file, page index) to an LBA on a specific block device — the
 * storage-layout knowledge the LBA-augmented page table mirrors into
 * PTEs. Files are allocated in extents with configurable fragmentation
 * so LBAs are realistic (mostly sequential with seams). Block mapping
 * changes (copy-on-write or log-structured updates, Section IV-B)
 * go through remapPage(), which notifies a registered listener so the
 * kernel can patch LBA-augmented PTEs.
 */

#ifndef HWDP_OS_FILE_SYSTEM_HH
#define HWDP_OS_FILE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

/** A block device address: socket-local SMU id + device id. */
struct BlockDeviceId
{
    unsigned sid = 0;
    unsigned dev = 0;

    bool operator==(const BlockDeviceId &) const = default;
};

class File
{
  public:
    File(std::uint32_t id, std::string name, std::uint64_t n_pages,
         BlockDeviceId bdev);

    std::uint32_t id() const { return fid; }
    const std::string &name() const { return fname; }
    std::uint64_t numPages() const { return blockMap.size(); }
    BlockDeviceId device() const { return bdev; }

    /** LBA backing page @p index. One LBA covers one 4 KB page. */
    Lba lbaOf(std::uint64_t index) const;

    /**
     * Raw page-index -> LBA table (numPages() entries), for bulk
     * population sweeps that bounds-check once instead of per page.
     */
    const Lba *lbaTable() const { return blockMap.data(); }

    /** True once the fast-mmap path has marked this file (IV-B). */
    bool lbaAugmentedMapping() const { return marked; }
    void markLbaAugmented() { marked = true; }

  private:
    friend class FileSystem;

    std::uint32_t fid;
    std::string fname;
    BlockDeviceId bdev;
    std::vector<Lba> blockMap; // page index -> LBA
    bool marked = false;
};

class FileSystem
{
  public:
    /**
     * @param rng          Drives extent-seam placement.
     * @param extent_pages Mean pages per contiguous extent.
     */
    explicit FileSystem(sim::Rng rng, std::uint64_t extent_pages = 512);

    /** Create a file of @p n_pages 4 KB pages on @p bdev. */
    File *createFile(const std::string &name, std::uint64_t n_pages,
                     BlockDeviceId bdev);

    File *lookup(const std::string &name);
    File *byId(std::uint32_t id);

    /**
     * Re-locate one page's block (CoW / log-structured update) and
     * notify the remap listener with the new LBA.
     */
    void remapPage(File &file, std::uint64_t index);

    /** Listener invoked as (file, page index, new LBA). */
    using RemapListener =
        std::function<void(File &, std::uint64_t, Lba)>;
    void setRemapListener(RemapListener fn) { onRemap = std::move(fn); }

    std::uint64_t allocatedBlocks() const { return nextLba; }

    /**
     * Checkpoint the allocator stream and every file's block map
     * (remapPage mutates maps after creation). File identities are
     * boot structure and only verified.
     */
    void serialize(sim::Serializer &s);

  private:
    sim::Rng rng;
    std::uint64_t extentPages;
    std::vector<std::unique_ptr<File>> files;
    Lba nextLba = 1024; // low LBAs reserved for superblock/metadata
    RemapListener onRemap;

    void allocateExtents(File &f);
};

} // namespace hwdp::os

#endif // HWDP_OS_FILE_SYSTEM_HH

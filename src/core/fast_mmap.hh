/**
 * @file
 * HWDP OS support glue: the fast-mmap VMA registry and hook wiring.
 *
 * The kernel proper stays ignorant of the hardware extension; this
 * module registers the control-plane pieces with it:
 *  - a registry of fast-mmap'ed VMAs for kpted to scan,
 *  - the munmap/msync metadata-sync hook (kpted's synchronous path),
 *  - the SMU barrier hook (wait for outstanding misses before unmap),
 *  - the overlapped free-page-queue refill hook for fallback faults,
 *  - the queue-empty kick that wakes kpoold early.
 */

#ifndef HWDP_CORE_FAST_MMAP_HH
#define HWDP_CORE_FAST_MMAP_HH

#include <vector>

#include "os/kernel.hh"

namespace hwdp::core {

class Kpoold;
class Kpted;
class Smu;

struct FastVma
{
    os::AddressSpace *as;
    os::Vma *vma;
};

class HwdpOsSupport
{
  public:
    explicit HwdpOsSupport(os::Kernel &kernel);

    /** Track a VMA mapped with the fast-mmap flag. */
    void registerFastVma(os::AddressSpace &as, os::Vma *vma);
    void unregisterFastVma(os::Vma *vma);

    const std::vector<FastVma> &fastVmas() const { return vmas; }

    /**
     * Install the SMU barrier hook and the queue-empty kick. Called
     * once per socket on multi-socket machines; the barrier hook then
     * waits on every attached SMU in socket order.
     */
    void attachSmu(Smu *smu);

    /** Install the metadata-sync hook (munmap/msync barriers). */
    void attachKpted(Kpted *kpted);

    /** Install the overlapped-refill hook for fallback faults. */
    void attachKpoold(Kpoold *kpoold);

    os::Kernel &kernel() { return k; }

    /**
     * Checkpoint verification of the fast-VMA registry. The registry
     * is rebuilt by the boot recipe (fast-mmap calls), so restore only
     * confirms the restored machine tracks the same VMAs.
     */
    void serialize(sim::Serializer &s);

  private:
    os::Kernel &k;
    std::vector<FastVma> vmas;
    std::vector<Smu *> smus; ///< One per socket, attach order = socket order.
    Kpted *kpted = nullptr;
    Kpoold *kpoold = nullptr;

    void installHooks();

    /** Barrier on smus[i..): each completes before the next starts. */
    static void barrierChain(std::vector<Smu *> smus, std::size_t i,
                             std::function<void()> done);
};

} // namespace hwdp::core

#endif // HWDP_CORE_FAST_MMAP_HH

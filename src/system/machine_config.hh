/**
 * @file
 * Machine configuration: everything a System needs to build itself.
 *
 * Defaults model the evaluation machine (Table II): a 2.8 GHz Xeon
 * E5-2640 v3 with 8 physical / 16 logical cores and a Samsung SZ985
 * Z-SSD — with memory and dataset sizes scaled down by a constant
 * factor (the experiments are ratio-driven; see DESIGN.md).
 */

#ifndef HWDP_SYSTEM_MACHINE_CONFIG_HH
#define HWDP_SYSTEM_MACHINE_CONFIG_HH

#include <string>

#include "core/smu.hh"
#include "cpu/thread_context.hh"
#include "mem/cache_hierarchy.hh"
#include "os/kernel.hh"

namespace hwdp::system {

/** How page misses on fast-mmap areas are handled. */
enum class PagingMode {
    osdp,  ///< Conventional OS demand paging (the baseline).
    hwdp,  ///< The paper's hardware SMU.
    swsmu, ///< Software-emulated SMU (Figure 17's SW-only).
};

const char *pagingModeName(PagingMode mode);

/** Where the kernel homes a freshly faulted anonymous/file frame. */
enum class NumaPlacement {
    firstTouch, ///< Frame on the faulting core's socket (Linux default).
    roundRobin, ///< Interleave frames across sockets in fault order.
};

const char *numaPlacementName(NumaPlacement p);

const char *pageModeName(PageMode mode);

struct MachineConfig
{
    PagingMode mode = PagingMode::osdp;

    // ---- CPU ----------------------------------------------------------
    unsigned nLogical = 16;
    unsigned nPhysical = 8;
    Tick cyclePeriod = 357; // ps, 2.8 GHz
    cpu::CoreParams core{};

    // ---- Topology -------------------------------------------------------
    /**
     * CPU sockets in the machine. Each socket groups an equal share of
     * the logical cores, a contiguous span of DRAM, its own SMU (or
     * SW-SMU) with PMSHR + free-page queues, and its own NVMe
     * device(s) behind the local host controller — the paper's SMU is
     * explicitly per-socket (Section III). 1 (the default) builds a
     * machine byte-identical to the pre-NUMA simulator: same object
     * names, same RNG fork order, same stats dump, same checkpoint
     * blob. The PTE's 3-bit socket-id field caps this at 8.
     */
    unsigned sockets = 1;

    /**
     * Extra core cycles an LLC-missing data access pays when the frame
     * lives on a remote socket (the QPI/UPI hop). Inert at sockets=1.
     */
    unsigned numaRemoteExtraCycles = 170;

    /**
     * Latency for a miss request register write that crosses sockets
     * to a remote SMU (PTE socket-id != faulting core's socket).
     */
    Tick numaRemoteSmuLatency = nanoseconds(120.0);

    /** Frame placement policy for kernel-side fault allocation. */
    NumaPlacement numaPlacement = NumaPlacement::firstTouch;

    unsigned coresPerSocket() const { return nLogical / sockets; }
    unsigned socketOfCore(unsigned core_id) const
    {
        return sockets <= 1 ? 0 : core_id / coresPerSocket();
    }

    /** Per-walker page-walk-cache entries (0 disables the PWC). */
    unsigned pwcEntries = 16;

    // ---- Translation reach ----------------------------------------------
    /**
     * Huge pages and contiguity-aware translation. off (the default)
     * builds a machine byte-identical to the pre-huge-page simulator:
     * same stats dump, same checkpoint blob. thp enables fault-time
     * 2 MB transparent huge pages on demand-paged (non fast-mmap)
     * VMAs; napot stamps 64 KB NAPOT reach onto contiguous runs of
     * demand-paged 4 KB file pages (HWDP keeps its 4 KB miss
     * granularity, the TLB gains reach); coalesce is napot + thp plus
     * the kcoalesced daemon promoting 4 KB runs that landed
     * contiguously to 2 MB leaves in the background.
     */
    PageMode pageMode = PageMode::off;

    /** kcoalesced wakeup period (pageMode=coalesce only). */
    Tick kcoalescePeriod = milliseconds(8.0);
    /** 2 MB windows kcoalesced examines per wakeup. */
    std::uint64_t kcoalesceBatch = 32;

    // ---- Memory ---------------------------------------------------------
    /** Allocatable DRAM in 4 KB frames (default 512 MB scaled). */
    std::uint64_t memFrames = 128 * 1024;
    std::uint64_t reservedFrames = 512;
    mem::CacheParams cache{};

    // ---- Storage ---------------------------------------------------------
    std::string ssdProfile = "zssd";

    /**
     * Block devices on socket 0 (the PTE's 3-bit device-id field
     * supports up to 8 per SMU, Section III-B).
     */
    unsigned nDevices = 1;

    // ---- Kernel ----------------------------------------------------------
    os::KernelParams kernel{};

    // ---- HWDP ------------------------------------------------------------
    core::Smu::Params smu{};

    /**
     * Section V extension: convert hardware stalls longer than this
     * into a timeout exception + context switch. 0 disables (the
     * paper's base design).
     */
    Tick hwStallTimeout = 0;
    bool kpooldEnabled = true;
    Tick kpooldPeriod = milliseconds(4.0);
    std::uint64_t kpooldBatch = 1024;
    /** Paper: 1 s against 32 GB; scaled with the memory size. */
    Tick kptedPeriod = milliseconds(25.0);
    bool kptedGuidedScan = true;

    // ---- Simulation ---------------------------------------------------------
    std::uint64_t seed = 42;
    bool pollutionEnabled = true;
    /**
     * Use the batched (level-major) pollution engine. Off selects the
     * per-line reference path; simulated results are bit-identical
     * either way (the differential suite proves it), only host speed
     * differs.
     */
    bool pollutionBatch = true;
    bool quiet = true;

    /**
     * Inline demand-paging fast path: walker-miss -> SMU -> PMSHR ->
     * NVMe-submit hops execute inline on the logical clock whenever
     * the chain finishes before the next scheduled event, device
     * completions of the SMU's snooped queues pool into a per-device
     * drain event, and doorbell/fetch events coalesce. Off selects the
     * event-per-hop reference path; simulated results and stats dumps
     * are bit-identical either way (the paging differential suite
     * proves it), only host speed differs.
     */
    bool faultFastPath = true;

    /**
     * Host execution lanes for one simulated machine (the parallel
     * simulation mode). 1 runs the engine exactly as before — no pool
     * is built and no parallel code path is reachable. Values > 1
     * spawn simThreads - 1 host workers that execute set-sharded
     * cache batches and the branch-predictor side lane under the
     * unchanged sequential event loop. Simulated state and every
     * statistic are bit-identical for any value (the parallel
     * differential suite enforces it); only host wall time changes.
     * Independent of SweepRunner's across-machine parallelism
     * (HWDP_BENCH_JOBS) — see EXPERIMENTS.md for guidance.
     */
    unsigned simThreads = 1;

    /**
     * Last logical cores host the kernel threads by default; small
     * machines share core 0 with the workload.
     */
    unsigned kptedCore() const { return nLogical - 1; }
    unsigned kpooldCore() const
    {
        return nLogical >= 2 ? nLogical - 2 : 0;
    }
    unsigned reclaimCore() const
    {
        return nLogical >= 3 ? nLogical - 3 : 0;
    }
    unsigned kcoalesceCore() const
    {
        // Small machines co-locate with kpoold, whose batches are
        // bounded — kpted can monopolize its core under sustained
        // fault traffic, and core 0 belongs to the workload.
        return nLogical >= 5 ? nLogical - 4 : kpooldCore();
    }

    /** Table II-style configuration dump. */
    std::string describe() const;
};

} // namespace hwdp::system

#endif // HWDP_SYSTEM_MACHINE_CONFIG_HH

/**
 * @file
 * Figure 3: time breakdown of a single OSDP page fault.
 *
 * Prints the calibrated kernel-phase decomposition as fractions of
 * the Z-SSD device time next to the fractions the paper reports
 * (exception & PT walk 2.45%, I/O submission 9.85%, interrupt
 * delivery 2.5%, context switch 9.85%, I/O completion 20.6%, total
 * overhead 76.3% of device time), then cross-checks against a
 * measured single-fault latency from a one-thread FIO run.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "os/kernel_phases.hh"
#include "ssd/ssd_profile.hh"

using namespace hwdp;
using metrics::Table;
using namespace hwdp::os;

int
main()
{
    metrics::banner("Figure 3: single OSDP page fault breakdown",
                    "fractions of the 10.9 us Z-SSD device time");

    auto prof = ssd::profileByName("zssd");
    double dev_us = toMicroseconds(prof.unloadedRead4k());
    const Tick period = 357;

    struct Row
    {
        const KernelPhase *phase;
        const char *paper;
    };
    // Paper fractions where Figure 3 labels them; '-' where the figure
    // aggregates them into the fault-handler remainder.
    Row rows[] = {
        {&phases::exceptionEntry, "2.45% (incl. walk)"},
        {&phases::vmaLookup, "-"},
        {&phases::pageAlloc, "-"},
        {&phases::ioSubmit, "9.85%"},
        {&phases::contextSwitch, "9.85% (switch out)"},
        {&phases::irqDeliver, "2.5%"},
        {&phases::ioComplete, "20.6%"},
        {&phases::wakeupSched, "-"},
        {&phases::contextSwitch, "(switch in)"},
        {&phases::metadataUpdate, "-"},
        {&phases::pteUpdateReturn, "-"},
    };

    Table t({"phase", "us", "% of device time", "paper"});
    double total_us = 0;
    int i = 0;
    for (const Row &r : rows) {
        double us = toMicroseconds(r.phase->cycles * period);
        // The switch-out (row index 4) overlaps the device I/O and is
        // off the fault's critical path; everything else adds latency.
        bool overlapped = i == 4;
        if (!overlapped)
            total_us += us;
        t.addRow({overlapped
                      ? std::string(r.phase->name) + " (overlaps I/O)"
                      : std::string(r.phase->name),
                  Table::num(us), Table::pct(us / dev_us), r.paper});
        ++i;
    }
    t.addRow({"device I/O", Table::num(dev_us), "100%", "100%"});
    t.addRow({"TOTAL critical-path kernel overhead", Table::num(total_us),
              Table::pct(total_us / dev_us), "76.3%"});
    t.print();

    // Cross-check with a measured run: one FIO thread, cold reads.
    auto cfg = bench::paperConfig(system::PagingMode::osdp);
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 32 * bench::defaultMemFrames);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 8000);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(60.0));

    double fault_us = sys.kernel().faultLatencyUs().mean();
    std::printf("\nmeasured single-fault latency : %.2f us "
                "(device %.2f us + kernel %.2f us)\n",
                fault_us, dev_us, fault_us - dev_us);
    std::printf("measured kernel overhead      : %.1f%% of device time "
                "(paper: 76.3%%)\n",
                (fault_us - dev_us) / dev_us * 100.0);
    return 0;
}

/**
 * @file
 * System: assembles and drives one simulated machine.
 *
 * Owns the event queue, physical memory, caches, branch predictors,
 * the kernel, the SSD, the HWDP machinery appropriate to the
 * configured paging mode, the per-core MMUs and the workload threads.
 * Benches build a System per configuration, map a dataset, add
 * threads and run to completion.
 */

#ifndef HWDP_SYSTEM_SYSTEM_HH
#define HWDP_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/fast_mmap.hh"
#include "core/kcoalesced.hh"
#include "core/kpoold.hh"
#include "core/kpted.hh"
#include "core/smu.hh"
#include "core/software_smu.hh"
#include "cpu/core.hh"
#include "cpu/thread_context.hh"
#include "sim/shard_pool.hh"
#include "system/machine_config.hh"
#include "system/socket.hh"

namespace hwdp::system {

class System
{
  public:
    explicit System(const MachineConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    // ---- Machine access ------------------------------------------------
    const MachineConfig &config() const { return cfg; }
    sim::EventQueue &eventQueue() { return eq; }
    os::Kernel &kernel() { return *kern; }
    mem::PhysMem &physMem() { return *pm; }
    mem::CacheHierarchy &caches() { return *hierarchy; }
    std::vector<mem::BranchPredictor> &branchPredictors() { return bps; }
    ssd::SsdDevice &ssd() { return *ssds.front(); }
    cpu::Core &core(unsigned i) { return *cores.at(i); }

    /** Parallel-mode worker pool; nullptr when simThreads == 1. */
    sim::ShardPool *shardPool() { return pool.get(); }

    core::Smu *smu()
    {
        return smuUnits.empty() ? nullptr : smuUnits.front().get();
    }
    core::SoftwareSmu *softwareSmu()
    {
        return swSmus.empty() ? nullptr : swSmus.front().get();
    }
    core::Kpted *kpted() { return kptedThread.get(); }
    core::Kpoold *kpoold() { return kpooldThread.get(); }
    /** Non-null only when pageMode == coalesce. */
    core::Kcoalesced *kcoalesced() { return kcoalescedThread.get(); }
    core::HwdpOsSupport *hwdpSupport() { return support.get(); }
    core::FreePageQueue *freePageQueue();

    // ---- Socket topology -------------------------------------------------
    unsigned numSockets() const { return cfg.sockets; }
    Socket &socketAt(unsigned s) { return socketTopo.at(s); }
    const std::vector<Socket> &socketTopology() const
    {
        return socketTopo;
    }
    core::Smu *smuAt(unsigned s)
    {
        return s < smuUnits.size() ? smuUnits[s].get() : nullptr;
    }
    core::SoftwareSmu *softwareSmuAt(unsigned s)
    {
        return s < swSmus.size() ? swSmus[s].get() : nullptr;
    }

    /**
     * Fault injection on the cross-socket shootdown fan-out (the
     * kpted-sync path only — unmap shootdowns are never perturbed, a
     * stale PWC entry there could outlive its table). Queried once
     * per remote socket per sync broadcast, so a seeded plan stays
     * schedule-stable.
     */
    struct ShootdownFault
    {
        bool drop = false; ///< Skip this socket's PWC invalidation.
        Tick delay = 0;    ///< Apply it this much later (0: now).
    };
    using ShootdownFaultHook = std::function<ShootdownFault(unsigned)>;
    void setShootdownFaultHook(ShootdownFaultHook fn)
    {
        shootdownFaultHook = std::move(fn);
    }

    /**
     * staleWideTlb fault site: queried on every *delayable* wide-range
     * shootdown (promotion/split broadcasts, where the frames stay in
     * place); a returned tick > 0 applies the whole broadcast that
     * much later, leaving stale wide TLB entries resident in the
     * window. Unmap/eviction broadcasts never consult it.
     */
    using WideShootdownHook = std::function<Tick()>;
    void setWideShootdownHook(WideShootdownHook fn)
    {
        wideShootdownHook = std::move(fn);
    }

    /** Delayable wide shootdowns the hook actually deferred. */
    std::uint64_t wideShootdownsDelayed() const
    {
        return nWideShootdownsDelayed;
    }

    /** TLB hits served by wide (NAPOT / 2 MB) entries, all cores. */
    std::uint64_t totalTlbWideHits() const;

    /** Number of attached block devices. */
    unsigned numSsds() const
    {
        return static_cast<unsigned>(ssds.size());
    }
    ssd::SsdDevice &ssdAt(unsigned d) { return *ssds.at(d); }

    // ---- Boot-time setup (untimed) --------------------------------------
    /** Create a file on block device @p device. */
    os::File *createFile(const std::string &name, std::uint64_t pages,
                         unsigned device = 0);

    struct MappedFile
    {
        os::File *file = nullptr;
        os::Vma *vma = nullptr;
        os::AddressSpace *as = nullptr;
    };

    /**
     * Create and map a dataset file. Fast-mmap is used when the mode
     * is not OSDP; the VMA is registered with the HWDP control plane.
     * @param as Reuse an address space (threads of one process);
     *           nullptr creates one.
     */
    MappedFile mapDataset(const std::string &name, std::uint64_t pages,
                          os::AddressSpace *as = nullptr,
                          unsigned device = 0);

    /**
     * Anonymous mapping (heap-like). Under HWDP/SW-SMU the PTEs carry
     * the zero-fill LBA: first touches are handled without the OS
     * (the Section V extension).
     */
    MappedFile mapAnon(std::uint64_t pages,
                       os::AddressSpace *as = nullptr);

    /** MAP_POPULATE: install every page resident (the ideal config). */
    void preload(const MappedFile &mf);

    /**
     * Boot/warm-time frame allocation: single-socket machines take
     * the plain allocator path; multi-socket machines interleave by
     * @p seq so a preloaded dataset spreads evenly across nodes.
     */
    Pfn allocFrameInterleaved(std::uint64_t seq)
    {
        return cfg.sockets > 1
                   ? physMem().alloc(static_cast<unsigned>(
                         seq % cfg.sockets))
                   : physMem().alloc();
    }

    /** Add a workload thread pinned to @p core_idx. */
    cpu::ThreadContext *addThread(workloads::Workload &wl,
                                  unsigned core_idx,
                                  os::AddressSpace &as);

    const std::vector<std::unique_ptr<cpu::ThreadContext>> &
    threads() const
    {
        return tcs;
    }

    // ---- Running ---------------------------------------------------------
    /** Start the scheduler and prime the HWDP control plane. */
    void start();

    /**
     * Run until every workload thread finished (or @p max_ticks).
     * @return true when all threads completed.
     */
    bool runUntilThreadsDone(Tick max_ticks = seconds(30.0));

    /** Run for a fixed simulated duration (open-ended workloads). */
    void runFor(Tick duration);

    /** Stop periodic kthreads so the event queue can drain. */
    void stopKthreads();

    // ---- Checkpointing ---------------------------------------------------
    /**
     * Bring the machine to a checkpointable state: stop the periodic
     * kthreads and drain the event queue. Requires every workload
     * thread to have finished (an unbounded workload never drains);
     * throws sim::SerializeError otherwise. Call resumeKthreads() to
     * continue running afterwards — both the straight and the restored
     * path must do so, so the re-armed timers land on identical ticks
     * with identical event sequence numbers.
     */
    void quiesce();

    /** Re-arm the periodic kthreads after quiesce() or a restore. */
    void resumeKthreads();

    /**
     * Checkpoint every component in a fixed order. Save side requires
     * quiesce(); load side requires a machine built by the *same boot
     * recipe* (same config, files, mappings, threads) that was never
     * started — boot structure is verified, logical state overwritten.
     * Use system::Checkpoint for the versioned header + file I/O.
     */
    void serialize(sim::Serializer &s);

    /** Called by Checkpoint::restore once the blob is applied. */
    void onRestored(std::uint64_t blob_bytes);

    /** Config dump plus the checkpoint provenance line. */
    std::string describe() const;

    Tick now() const { return eq.now(); }

    // ---- Aggregate measurements ------------------------------------------
    /** Total application ops completed across threads. */
    std::uint64_t totalAppOps() const;

    /** Ops per simulated second over the span of thread execution. */
    double throughputOpsPerSec() const;

    /** Aggregate user IPC across workload threads. */
    double aggregateUserIpc() const;

    /** Aggregate user-mode branch misprediction count. */
    std::uint64_t userBranchMispredicts() const;
    std::uint64_t userBranchLookups() const;

    /** Page-walk-cache hits/misses summed over every core's walker. */
    std::uint64_t totalPwcHits() const;
    std::uint64_t totalPwcMisses() const;

  private:
    MachineConfig cfg;
    sim::EventQueue eq;
    sim::Rng rng;

    /** Declared before its users so it outlives them at teardown. */
    std::unique_ptr<sim::ShardPool> pool;

    std::unique_ptr<mem::PhysMem> pm;
    std::unique_ptr<mem::CacheHierarchy> hierarchy;
    std::vector<mem::BranchPredictor> bps;
    std::unique_ptr<os::Kernel> kern;
    std::vector<std::unique_ptr<ssd::SsdDevice>> ssds;
    std::vector<std::unique_ptr<cpu::Core>> cores;

    /** One per socket, index = socket id (hwdp mode). */
    std::vector<std::unique_ptr<core::Smu>> smuUnits;
    /** One per socket, index = socket id (swsmu mode only). */
    std::vector<std::unique_ptr<core::FreePageQueue>> swFpqs;
    std::vector<std::unique_ptr<core::SoftwareSmu>> swSmus;
    std::unique_ptr<core::HwdpOsSupport> support;

    /** Topology view; built for every machine (size 1 at one socket). */
    std::vector<Socket> socketTopo;
    ShootdownFaultHook shootdownFaultHook;
    WideShootdownHook wideShootdownHook;
    std::uint64_t nWideShootdownsDelayed = 0;
    std::unique_ptr<core::Kpted> kptedThread;
    std::unique_ptr<core::Kpoold> kpooldThread;
    std::unique_ptr<core::Kcoalesced> kcoalescedThread;

    std::vector<std::unique_ptr<workloads::Workload>> ownedWorkloads;
    std::vector<std::unique_ptr<cpu::ThreadContext>> tcs;
    std::uint64_t threadsDone = 0;
    bool started = false;

    /** describe() provenance: cold boot or restored-from-blob. */
    std::string ckptNote;

    /**
     * Drop PWC entries covering @p va from every core's walker,
     * bumping the per-socket shootdown epochs on multi-socket
     * machines. @p sync_path marks kpted-sync broadcasts, the only
     * ones the shootdown fault hook may drop or delay.
     */
    void pwcShootdown(os::AddressSpace &as, VAddr va, bool sync_path);

    /**
     * Wide-range shootdown (pageMode != off): invalidate [va,
     * va + pages * 4 KB) in every core's TLB (reach-aware) and drop
     * the covering PWC upper entries; multi-socket machines advance
     * every socket's epoch, the same coherence event the 4 KB path
     * counts.
     */
    void rangeShootdown(os::AddressSpace &as, VAddr va,
                        std::uint64_t pages, bool delayable);

  public:
    /** Transfer ownership of a workload to the system (lifetime). */
    template <typename W, typename... Args>
    W *
    makeWorkload(Args &&...args)
    {
        auto w = std::make_unique<W>(std::forward<Args>(args)...);
        W *raw = w.get();
        ownedWorkloads.push_back(std::move(w));
        return raw;
    }
};

} // namespace hwdp::system

#endif // HWDP_SYSTEM_SYSTEM_HH

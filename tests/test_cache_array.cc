/**
 * @file
 * Tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::mem;

TEST(CacheArray, GeometryValidation)
{
    EXPECT_THROW(CacheArray("x", 0, 8), FatalError);
    EXPECT_THROW(CacheArray("x", 32768, 0), FatalError);
    EXPECT_THROW(CacheArray("x", 32768, 8, 48), FatalError); // non-pow2
    // 3 sets is not a power of two: 3 * 8 * 64 bytes.
    EXPECT_THROW(CacheArray("x", 3 * 8 * 64, 8, 64), FatalError);
}

TEST(CacheArray, GeometryAccessors)
{
    CacheArray c("c", 32 * 1024, 8, 64);
    EXPECT_EQ(c.sizeBytes(), 32u * 1024);
    EXPECT_EQ(c.associativity(), 8u);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray c("c", 4096, 4);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1004)); // same line
    EXPECT_EQ(c.hitCount(), 2u);
    EXPECT_EQ(c.missCount(), 1u);
}

TEST(CacheArray, LruEvictsOldest)
{
    // 2-way, line 64: set count = 4096 / (2*64) = 32 sets.
    CacheArray c("c", 4096, 2);
    std::uint64_t set_stride = 32 * 64; // same set every stride
    // Fill one set with two lines.
    c.access(0 * set_stride);
    c.access(1 * set_stride);
    // Touch the first again so the second becomes LRU.
    c.access(0 * set_stride);
    // Insert a third: must evict line 1.
    c.access(2 * set_stride);
    EXPECT_TRUE(c.probe(0 * set_stride));
    EXPECT_FALSE(c.probe(1 * set_stride));
    EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(CacheArray, ProbeDoesNotAllocateOrTouch)
{
    CacheArray c("c", 4096, 2);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.occupancy(), 0u);
    EXPECT_EQ(c.missCount(), 0u);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c("c", 4096, 2);
    c.access(0x80);
    EXPECT_TRUE(c.invalidate(0x80));
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_FALSE(c.invalidate(0x80)); // second time: not present
}

TEST(CacheArray, FlushDropsEverything)
{
    CacheArray c("c", 4096, 2);
    for (int i = 0; i < 32; ++i)
        c.access(i * 64);
    EXPECT_GT(c.occupancy(), 0u);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheArray, WorkingSetWithinCapacityAllHits)
{
    CacheArray c("c", 32 * 1024, 8);
    // 16 KB working set in a 32 KB cache: second pass must fully hit.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t a = 0; a < 16 * 1024; a += 64)
            c.access(a);
    }
    EXPECT_EQ(c.missCount(), 256u); // only the first pass
    EXPECT_EQ(c.hitCount(), 256u);
}

TEST(CacheArray, CyclicOversizedSetThrashes)
{
    // Classic LRU pathology: cycling N+1 lines through an N-way set
    // misses every time.
    CacheArray c("c", 2 * 64, 2, 64); // one set, 2 ways
    for (int pass = 0; pass < 4; ++pass) {
        for (int l = 0; l < 3; ++l)
            c.access(static_cast<std::uint64_t>(l) * 64);
    }
    EXPECT_EQ(c.hitCount(), 0u);
}

TEST(CacheArray, OccupancyIsLiveAcrossFillInvalidateFlush)
{
    // occupancy() is an O(1) counter, not a scan; it must track every
    // transition exactly: fill (+1), hit (0), conflict eviction (0,
    // replaces valid with valid), invalidate (-1), flush (reset).
    CacheArray c("c", 2 * 64, 2, 64); // one set, 2 ways
    EXPECT_EQ(c.occupancy(), 0u);
    c.access(0 * 64);
    EXPECT_EQ(c.occupancy(), 1u);
    c.access(0 * 64); // hit: no change
    EXPECT_EQ(c.occupancy(), 1u);
    c.access(1 * 64);
    EXPECT_EQ(c.occupancy(), 2u);
    c.access(2 * 64); // conflict miss: evict + fill, net zero
    EXPECT_EQ(c.occupancy(), 2u);
    EXPECT_TRUE(c.invalidate(2 * 64));
    EXPECT_EQ(c.occupancy(), 1u);
    EXPECT_FALSE(c.invalidate(2 * 64)); // absent: no change
    EXPECT_EQ(c.occupancy(), 1u);
    c.access(3 * 64); // refills the invalidated way
    EXPECT_EQ(c.occupancy(), 2u);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheArray, RenormalizationPreservesLruOrder)
{
    // The packed layout renormalises recency stamps when the narrow
    // clock saturates. Replacement must be bit-identical across that
    // boundary: build a known recency order in one set, push the clock
    // over the renormalisation point from another set, then check the
    // eviction order is exactly the order the stamps encoded.
    CacheArray c("c", 2 * 4 * 64, 4, 64); // 2 sets, 4 ways
    std::uint64_t stride = 2 * 64;        // stays in set 0
    for (int w = 0; w < 4; ++w)
        c.access(w * stride);
    // Recency now 0 < 1 < 2 < 3; touch 1 and 0 => order 2 < 3 < 1 < 0.
    c.access(1 * stride);
    c.access(0 * stride);

    // Saturate the clock from set 1 (stampMask is small for this
    // geometry, so a few hundred accesses cross it several times).
    for (int i = 0; i < 1000; ++i)
        c.access(64 + (i % 3) * stride);

    // Evict from set 0 one line at a time: victims must come out in
    // stamp order 2, 3, 1, 0.
    const int expect[] = {2, 3, 1, 0};
    for (int round = 0; round < 4; ++round) {
        c.access((10 + round) * stride); // new line evicts one victim
        EXPECT_FALSE(c.probe(expect[round] * stride))
            << "round " << round;
        for (int later = round + 1; later < 4; ++later)
            EXPECT_TRUE(c.probe(expect[later] * stride))
                << "round " << round << " line " << later;
    }
}

TEST(CacheArray, HighAddressBitsDistinguishTags)
{
    // The packed word keeps the full tag (with a +1 bias); addresses
    // differing only far above the index bits must not alias, and
    // address 0 must not hit in an empty set (the all-zero word is the
    // invalid encoding).
    CacheArray c("c", 4096, 4); // 16 sets: all three land in set 0
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(1ull << 40));
    EXPECT_FALSE(c.access(1ull << 62));
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(1ull << 40));
    EXPECT_TRUE(c.probe(1ull << 62));
    CacheArray d("d", 4096, 4);
    EXPECT_FALSE(d.probe(0));
}

struct CacheGeom
{
    std::uint64_t size;
    unsigned assoc;
};

class CacheArrayProperty : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheArrayProperty, OccupancyNeverExceedsCapacity)
{
    auto [size, assoc] = GetParam();
    CacheArray c("c", size, assoc);
    sim::Rng rng(size ^ assoc);
    std::uint64_t capacity = size / 64;
    for (int i = 0; i < 20000; ++i)
        c.access(rng.range(1 << 22) * 64);
    EXPECT_LE(c.occupancy(), capacity);
    EXPECT_EQ(c.hitCount() + c.missCount(), 20000u);
}

TEST_P(CacheArrayProperty, ResidentLineStaysUntilConflict)
{
    auto [size, assoc] = GetParam();
    CacheArray c("c", size, assoc);
    c.access(0);
    // Touching other sets never evicts set 0's line.
    unsigned sets = c.numSets();
    for (unsigned s = 1; s < sets; ++s)
        c.access(static_cast<std::uint64_t>(s) * 64);
    EXPECT_TRUE(c.probe(0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayProperty,
    ::testing::Values(CacheGeom{4096, 1}, CacheGeom{4096, 2},
                      CacheGeom{32 * 1024, 8}, CacheGeom{256 * 1024, 8},
                      CacheGeom{1024 * 1024, 16}));

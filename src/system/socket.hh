/**
 * @file
 * Socket: per-socket grouping of one machine's resources.
 *
 * The paper's SMU is a per-socket memory-side unit (Section III): each
 * socket carries its own SMU with PMSHR and free-page queues, its own
 * NVMe device(s) behind the local host controller, a contiguous span
 * of DRAM (see mem::PhysMem's partition) and an equal share of the
 * logical cores. System assembles one of these per configured socket —
 * a single-socket machine gets exactly one, wrapping the same objects
 * the pre-NUMA simulator built.
 *
 * The grouping is non-owning: System owns every component; Socket is
 * the topology view the NUMA paths (placement, remote-fill routing,
 * shootdown fan-out, invariant audits) navigate. The only state that
 * lives *in* the Socket is the shootdown epoch and fan-out counts,
 * serialized by System only for multi-socket machines so single-socket
 * checkpoint blobs stay byte-identical to pre-NUMA ones.
 */

#ifndef HWDP_SYSTEM_SOCKET_HH
#define HWDP_SYSTEM_SOCKET_HH

#include <cstdint>
#include <vector>

#include "core/smu.hh"
#include "core/software_smu.hh"

namespace hwdp::system {

struct Socket
{
    unsigned id = 0;

    /** Local cores are the contiguous range [firstCore, firstCore+nCores). */
    unsigned firstCore = 0;
    unsigned nCores = 0;

    /** This socket's SMU (hwdp mode; owns PMSHR, FPQs, NVMe host ctrl). */
    core::Smu *smu = nullptr;

    /** This socket's software SMU + its free-page queue (swsmu mode). */
    core::SoftwareSmu *swSmu = nullptr;
    core::FreePageQueue *swFpq = nullptr;

    /** Locally attached block devices (global ssd index order). */
    std::vector<ssd::SsdDevice *> devices;

    /**
     * Bumped once per TLB/PWC shootdown broadcast. Every socket
     * observes every broadcast, so the epochs must agree across
     * sockets at all times — checkInvariants audits exactly that.
     */
    std::uint64_t shootdownEpoch = 0;

    /** Shootdown broadcasts that reached this socket from another one. */
    std::uint64_t remoteShootdownsIn = 0;

    /** Remote-PWC invalidations dropped/deferred by fault injection. */
    std::uint64_t shootdownsDropped = 0;
    std::uint64_t shootdownsDelayed = 0;

    bool
    containsCore(unsigned core_id) const
    {
        return core_id >= firstCore && core_id < firstCore + nCores;
    }

    /** The socket's free-page queues, whichever SMU flavour it runs. */
    std::vector<core::FreePageQueue *>
    freePageQueues() const
    {
        if (smu)
            return smu->freePageQueues();
        if (swFpq)
            return {swFpq};
        return {};
    }
};

} // namespace hwdp::system

#endif // HWDP_SYSTEM_SOCKET_HH

#include "core/fast_mmap.hh"

#include <algorithm>

#include "core/kpoold.hh"
#include "core/kpted.hh"
#include "core/smu.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
HwdpOsSupport::serialize(sim::Serializer &s)
{
    s.section("hwdpossupport");
    std::uint64_t n = vmas.size();
    s.check(n, "fast-vma count");
    for (auto &fv : vmas) {
        std::uint32_t asid = fv.as->id();
        s.check(asid, "fast-vma address space");
        s.check(fv.vma->start, "fast-vma start");
        s.check(fv.vma->end, "fast-vma end");
    }
}

HwdpOsSupport::HwdpOsSupport(os::Kernel &kernel) : k(kernel)
{
    // The unmap hook must exist even before any accelerator component
    // attaches: the registry lives here, not in the SMU or kpted.
    installHooks();
}

void
HwdpOsSupport::registerFastVma(os::AddressSpace &as, os::Vma *vma)
{
    vmas.push_back(FastVma{&as, vma});
}

void
HwdpOsSupport::unregisterFastVma(os::Vma *vma)
{
    vmas.erase(std::remove_if(vmas.begin(), vmas.end(),
                              [vma](const FastVma &fv) {
                                  return fv.vma == vma;
                              }),
               vmas.end());
}

void
HwdpOsSupport::attachSmu(Smu *s)
{
    smus.push_back(s);
    s->setQueueEmptyCallback([this] {
        // Wake kpoold early so the queue refills before the next miss
        // where possible.
        if (kpoold)
            kpoold->kick();
    });
    installHooks();
}

void
HwdpOsSupport::attachKpted(Kpted *kt)
{
    kpted = kt;
    installHooks();
}

void
HwdpOsSupport::attachKpoold(Kpoold *kp)
{
    kpoold = kp;
    k.setRefillHook([this](unsigned core) {
        if (kpoold)
            kpoold->refillOverlapped(core);
    });
    installHooks();
}

void
HwdpOsSupport::installHooks()
{
    os::Kernel::HwdpHooks hooks;
    if (kpted) {
        Kpted *kt = kpted;
        hooks.syncMetadata = [kt](os::AddressSpace &as, VAddr lo,
                                  VAddr hi, unsigned core,
                                  std::function<void()> done) {
            kt->syncRange(as, lo, hi, core, std::move(done));
        };
    }
    if (smus.size() == 1) {
        // Single socket: hand the barrier straight through, exactly
        // the pre-NUMA hook.
        Smu *s = smus.front();
        hooks.smuBarrier = [s](std::function<void()> done) {
            s->barrier(std::move(done));
        };
    } else if (!smus.empty()) {
        // Multi-socket: an unmap barrier must cover every socket's
        // SMU — a miss in flight on any of them may still write the
        // PTEs being torn down. Chained in socket order so the
        // completion sequence is deterministic.
        std::vector<Smu *> list = smus;
        hooks.smuBarrier = [list](std::function<void()> done) {
            barrierChain(list, 0, std::move(done));
        };
    }
    // munmap destroys the Vma; the registry must not keep scanning it.
    hooks.vmaUnmapped = [this](os::Vma *vma) { unregisterFastVma(vma); };
    k.setHwdpHooks(std::move(hooks));
}

void
HwdpOsSupport::barrierChain(std::vector<Smu *> smus, std::size_t i,
                            std::function<void()> done)
{
    if (i == smus.size()) {
        done();
        return;
    }
    Smu *s = smus[i];
    s->barrier([smus = std::move(smus), i,
                done = std::move(done)]() mutable {
        barrierChain(std::move(smus), i + 1, std::move(done));
    });
}

} // namespace hwdp::core

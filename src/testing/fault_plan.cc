#include "testing/fault_plan.hh"

#include "sim/serialize.hh"
#include "system/system.hh"

namespace hwdp::testing {

void
FaultPlan::serialize(sim::Serializer &s)
{
    s.section("faultplan");
    for (auto &st : states) {
        s.check(st.armed, "fault site armed");
        s.check(st.cfg.rate, "fault site rate");
        s.check(st.cfg.maxInjections, "fault site cap");
        st.rng.serialize(s);
        s.io(st.nQueries);
    }
    std::uint64_t n = injectionLog.size();
    s.io(n);
    if (s.loading())
        injectionLog.resize(n);
    for (auto &e : injectionLog) {
        auto site = static_cast<std::uint32_t>(e.site);
        s.io(site);
        if (s.loading())
            e.site = static_cast<FaultSite>(site);
        s.io(e.tick);
        s.io(e.querySeq);
    }
    stats().serialize(s);
}

const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::ssdReadError:
        return "ssd_read_error";
      case FaultSite::ssdLatencySpike:
        return "ssd_latency_spike";
      case FaultSite::ssdChannelStall:
        return "ssd_channel_stall";
      case FaultSite::ssdDroppedDoorbell:
        return "ssd_dropped_doorbell";
      case FaultSite::fpqDry:
        return "fpq_dry";
      case FaultSite::pmshrFull:
        return "pmshr_full";
      case FaultSite::remoteFpqDry:
        return "remote_fpq_dry";
      case FaultSite::shootdownDrop:
        return "shootdown_drop";
      case FaultSite::shootdownDelay:
        return "shootdown_delay";
      case FaultSite::remotePmshrFull:
        return "remote_pmshr_full";
      case FaultSite::hugeCoalesceAbort:
        return "huge_coalesce_abort";
      case FaultSite::hugeSplitStorm:
        return "huge_split_storm";
      case FaultSite::staleWideTlb:
        return "stale_wide_tlb";
    }
    return "unknown";
}

FaultPlan::FaultPlan(std::string name, sim::EventQueue &eq,
                     std::uint64_t seed)
    : sim::SimObject(std::move(name), eq)
{
    // Each site forks its own stream off the seed in a fixed order, so
    // site i's decision sequence is a pure function of (seed, i).
    sim::Rng base(seed);
    for (unsigned i = 0; i < numFaultSites; ++i) {
        states[i].rng = base.fork();
        states[i].injected = &stats().counter(
            std::string(faultSiteName(static_cast<FaultSite>(i))) +
                "_injections",
            "faults injected at this site");
    }
}

void
FaultPlan::armAll()
{
    for (auto &st : states)
        st.armed = true;
}

void
FaultPlan::disarmAll()
{
    for (auto &st : states)
        st.armed = false;
}

void
FaultPlan::armAllAtRate(double rate)
{
    for (auto &st : states) {
        st.cfg.rate = rate;
        st.armed = true;
    }
}

void
FaultPlan::attach(system::System &sys)
{
    for (unsigned d = 0; d < sys.numSsds(); ++d)
        attachSsd(sys.ssdAt(d));
    // Socket 0 keeps the original sites, so a single-socket plan's
    // query sequences are unchanged; sockets 1+ get the remote
    // variants, which makes "only the remote node misbehaves"
    // experiments expressible.
    for (const system::Socket &sk : sys.socketTopology()) {
        bool remote = sk.id != 0;
        for (core::FreePageQueue *q : sk.freePageQueues())
            attachFpq(*q, remote);
        if (sk.smu)
            attachPmshr(sk.smu->pmshr(), remote);
    }
    // Translation-reach sites exist only when the machine can produce
    // wide PTEs; an off machine keeps the exact pre-huge-page hook
    // set (and these sites' streams are simply never queried).
    if (sys.config().pageMode != PageMode::off) {
        sys.kernel().setHugeSplitHook(
            [this] { return decide(FaultSite::hugeSplitStorm); });
        sys.setWideShootdownHook([this]() -> Tick {
            if (decide(FaultSite::staleWideTlb))
                return states[idx(FaultSite::staleWideTlb)]
                    .cfg.wideShootdownDeferral;
            return 0;
        });
        if (sys.kcoalesced())
            sys.kcoalesced()->setAbortHook([this] {
                return decide(FaultSite::hugeCoalesceAbort);
            });
    }
    if (sys.numSockets() > 1) {
        sys.setShootdownFaultHook([this](unsigned) {
            system::System::ShootdownFault f;
            // Both streams advance on every query, so arming one site
            // never shifts the other's decision sequence.
            f.drop = decide(FaultSite::shootdownDrop);
            bool delay = decide(FaultSite::shootdownDelay);
            if (delay && !f.drop)
                f.delay = states[idx(FaultSite::shootdownDelay)]
                              .cfg.shootdownDeferral;
            return f;
        });
    }
}

void
FaultPlan::attachSsd(ssd::SsdDevice &dev)
{
    dev.setFaultInjector(this);
}

void
FaultPlan::attachFpq(core::FreePageQueue &q, bool remote_socket)
{
    FaultSite s =
        remote_socket ? FaultSite::remoteFpqDry : FaultSite::fpqDry;
    q.setDryHook([this, s] { return decide(s); });
}

void
FaultPlan::attachPmshr(core::Pmshr &p, bool remote_socket)
{
    FaultSite s = remote_socket ? FaultSite::remotePmshrFull
                                : FaultSite::pmshrFull;
    p.setFullHook([this, s] { return decide(s); });
}

bool
FaultPlan::decide(FaultSite s)
{
    SiteState &st = states[idx(s)];
    // The stream advances on every query, armed or not: arming a site
    // must not shift the decision sequence of any other query.
    std::uint64_t seq = st.nQueries++;
    bool roll = st.rng.chance(st.cfg.rate);
    if (!st.armed || st.cfg.rate <= 0.0)
        return false;
    if (st.injected->value() >= st.cfg.maxInjections)
        return false;
    if (!roll)
        return false;
    ++*st.injected;
    injectionLog.push_back(LogEntry{s, now(), seq});
    return true;
}

ssd::IoFaultDecision
FaultPlan::onCommand(const nvme::SubmissionEntry &sqe, std::uint16_t)
{
    ssd::IoFaultDecision d;
    if (sqe.opcode == nvme::Opcode::read &&
        decide(FaultSite::ssdReadError))
        d.status = states[idx(FaultSite::ssdReadError)].cfg.errorStatus;
    if (decide(FaultSite::ssdLatencySpike))
        d.extraLatency =
            states[idx(FaultSite::ssdLatencySpike)].cfg.latencySpike;
    if (decide(FaultSite::ssdChannelStall))
        d.channelStall =
            states[idx(FaultSite::ssdChannelStall)].cfg.channelStall;
    return d;
}

Tick
FaultPlan::doorbellDropDelay(std::uint16_t)
{
    if (decide(FaultSite::ssdDroppedDoorbell))
        return states[idx(FaultSite::ssdDroppedDoorbell)]
            .cfg.doorbellDelay;
    return 0;
}

std::uint64_t
FaultPlan::totalInjections() const
{
    std::uint64_t n = 0;
    for (const auto &st : states)
        n += st.injected->value();
    return n;
}

} // namespace hwdp::testing

/**
 * @file
 * Differential verification of paging-mode equivalence.
 *
 * The paper's robustness claim (Sections IV-D, VI-A) is that a
 * hardware-handled miss is semantically identical to an OS-handled
 * one. The MachineDiffer checks that claim end-to-end: run the same
 * workload with the same seed on two System configurations (hardware
 * SMU, software-emulated SMU, plain OSDP), quiesce both, snapshot the
 * logical memory-management state of each and compare.
 *
 * The state model and the walk live in testing/logical_state.hh,
 * shared with the checkpointer; this module adds the cross-machine
 * comparison: on mismatch diff() renders a readable first-divergence
 * report naming the page and both sides' states.
 */

#ifndef HWDP_TESTING_MACHINE_DIFFER_HH
#define HWDP_TESTING_MACHINE_DIFFER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "testing/logical_state.hh"

namespace hwdp::system {
class System;
}

namespace hwdp::testing {

struct DiffOptions
{
    /**
     * Also require equal faultsServiced. Exact across modes only for
     * single-threaded, pressure-free runs (coalescing and reclaim
     * timing legitimately perturb the count otherwise).
     */
    bool compareFaultTotals = false;

    /**
     * Compare only the user-visible data surface: per-page dirtiness
     * (the writes the workload made durable), app ops and OOM kills.
     * Residency, sync status and LRU/page-cache bookkeeping are
     * ignored — a 2 MB fault legitimately makes 511 extra pages
     * resident, so cross-pageMode comparisons need this relaxation
     * while staying exact about what the user wrote.
     */
    bool userDataOnly = false;

    /** Divergences rendered into the report before truncation. */
    unsigned maxReports = 8;
};

struct DiffResult
{
    bool equivalent = true;
    unsigned divergences = 0;
    std::string report;
};

/**
 * Bring @p sys to a comparable end state: stop the periodic kthreads,
 * drain the event queue, then perform an untimed kpted-equivalent
 * metadata synchronisation of every hardware-handled PTE using the
 * *guided* upper-level-LBA scan — so a component that fails to mark
 * the upper levels leaves unsynced pages behind for the differ to
 * catch.
 */
void quiesce(system::System &sys);

/** Capture the logical memory-management state of @p sys. */
MachineState snapshot(system::System &sys, const std::string &label);

/** Compare two snapshots; readable first-divergence report on loss. */
DiffResult diff(const MachineState &a, const MachineState &b,
                const DiffOptions &opt = {});

/**
 * Dump every component StatGroup of @p sys in a fixed order. Given
 * one seed and one fault plan, two runs of the same configuration
 * must produce byte-identical output (the reproducibility gate).
 */
void dumpMachineStats(system::System &sys, std::ostream &os);

} // namespace hwdp::testing

#endif // HWDP_TESTING_MACHINE_DIFFER_HH

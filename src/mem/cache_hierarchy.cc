#include "mem/cache_hierarchy.hh"

#include "sim/logging.hh"

namespace hwdp::mem {

CacheHierarchy::CacheHierarchy(unsigned n_cores, const CacheParams &params)
    : prm(params), llc("llc", params.llcBytes, params.llcAssoc)
{
    if (n_cores == 0)
        fatal("cache hierarchy: need at least one core");
    l1i.reserve(n_cores);
    l1d.reserve(n_cores);
    l2.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        l1i.emplace_back("l1i" + std::to_string(c), prm.l1iBytes,
                         prm.l1iAssoc);
        l1d.emplace_back("l1d" + std::to_string(c), prm.l1dBytes,
                         prm.l1dAssoc);
        l2.emplace_back("l2_" + std::to_string(c), prm.l2Bytes,
                        prm.l2Assoc);
    }
}

CacheBatchResult
CacheHierarchy::accessBatch(unsigned core, const std::uint64_t *addrs,
                            std::size_t n, bool is_inst, ExecMode mode)
{
    if (core >= l1d.size()) [[unlikely]]
        badCore(core);

    CacheBatchResult r;
    if (n == 0)
        return r;
    ModeCounters &mc = modeCtrs[static_cast<unsigned>(mode)];

    if (batchMiss1.size() < n) {
        batchMiss1.resize(n);
        batchMiss2.resize(n);
        batchMiss3.resize(n);
    }

    // Level-major: the whole run against the L1, its compacted miss
    // list through the L2, then the LLC. Each array's access sequence
    // is the same subsequence it would see line-major, so state and
    // counters match the per-line path exactly.
    CacheArray &first = is_inst ? l1i[core] : l1d[core];
    std::size_t h1 = first.accessBatch(addrs, n, batchMiss1.data());
    std::size_t m1 = n - h1;
    r.l1Misses = m1;
    if (is_inst) {
        mc.l1iAccesses += n;
        mc.l1iMisses += m1;
    } else {
        mc.l1dAccesses += n;
        mc.l1dMisses += m1;
    }

    std::size_t h2 = 0, h3 = 0, m2 = 0;
    if (m1 > 0) {
        h2 = l2[core].accessBatch(batchMiss1.data(), m1,
                                  batchMiss2.data());
        m2 = m1 - h2;
        r.l2Misses = m2;
        mc.l2Misses += m2;
    }
    if (m2 > 0) {
        h3 = llc.accessBatch(batchMiss2.data(), m2, batchMiss3.data());
        r.llcMisses = m2 - h3;
        mc.llcMisses += r.llcMisses;
    }

    r.totalLatency = static_cast<Cycles>(h1) * prm.l1Latency +
                     static_cast<Cycles>(h2) * prm.l2Latency +
                     static_cast<Cycles>(h3) * prm.llcLatency +
                     static_cast<Cycles>(m2 - h3) * prm.dramLatency;
    return r;
}

void
CacheHierarchy::badCore(unsigned core) const
{
    panic("cache hierarchy: core ", core, " out of range");
}

void
CacheHierarchy::resetCounters()
{
    modeCtrs[0] = ModeCounters{};
    modeCtrs[1] = ModeCounters{};
}

} // namespace hwdp::mem

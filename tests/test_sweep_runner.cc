/**
 * @file
 * SweepRunner: parallel figure sweeps must be indistinguishable from
 * sequential ones — same results, same order — and failures in any
 * bench point must surface, not vanish into a worker thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/sweep_runner.hh"
#include "sim/rng.hh"
#include "system/machine_config.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

TEST(SweepRunner, ResultsComeBackInInputOrder)
{
    bench::SweepRunner runner(4);
    auto out = runner.map<std::size_t>(64, [](std::size_t i) {
        // Stagger completion so late indices finish first if the
        // runner ever reported in completion order.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t k = 0; k < (64 - i) * 1000; ++k)
            sink = sink + k;
        return i * 3;
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3);
}

TEST(SweepRunner, ParallelMatchesSequentialForRngWork)
{
    // Each point runs its own seeded RNG stream, the way every bench
    // point owns its System's Rng. Parallel output must be
    // byte-identical to the single-worker run.
    auto point = [](std::size_t i) {
        sim::Rng rng(42 + static_cast<std::uint64_t>(i));
        std::uint64_t acc = 0;
        for (int k = 0; k < 10000; ++k)
            acc = acc * 31 + rng.range(1 << 20);
        return acc;
    };
    bench::SweepRunner sequential(1);
    bench::SweepRunner parallel(4);
    auto a = sequential.map<std::uint64_t>(8, point);
    auto b = parallel.map<std::uint64_t>(8, point);
    EXPECT_EQ(a, b);
}

TEST(SweepRunner, ParallelSystemsMatchSequentialByteForByte)
{
    // The real contract: whole simulated machines, run concurrently,
    // produce exactly the stats a sequential sweep produces.
    auto point = [](std::size_t i) -> std::uint64_t {
        system::MachineConfig cfg;
        cfg.mode = i % 2 ? system::PagingMode::hwdp
                         : system::PagingMode::osdp;
        cfg.seed = 42 + static_cast<std::uint64_t>(i);
        cfg.quiet = true;
        system::System sys(cfg);
        auto mf = sys.mapDataset("f", 4096);
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma, 400);
        auto *tc = sys.addThread(*wl, 0, *mf.as);
        sys.runUntilThreadsDone(seconds(10.0));
        // Fold every interesting counter into one word; any
        // nondeterminism shows up as a mismatch.
        return tc->userInstructions() * 1315423911u +
               tc->faultedOps() * 2654435761u + sys.now();
    };
    bench::SweepRunner sequential(1);
    bench::SweepRunner parallel(4);
    auto a = sequential.map<std::uint64_t>(4, point);
    auto b = parallel.map<std::uint64_t>(4, point);
    EXPECT_EQ(a, b);
}

TEST(SweepRunner, FirstExceptionPropagates)
{
    bench::SweepRunner runner(4);
    EXPECT_THROW(runner.map<int>(16,
                                 [](std::size_t i) -> int {
                                     if (i == 7)
                                         throw std::runtime_error(
                                             "point 7 exploded");
                                     return static_cast<int>(i);
                                 }),
                 std::runtime_error);
}

TEST(SweepRunner, AllIndicesRunExactlyOnce)
{
    std::atomic<std::uint64_t> calls{0};
    std::vector<std::atomic<int>> hits(100);
    bench::SweepRunner runner(8);
    runner.map<int>(100, [&](std::size_t i) {
        calls.fetch_add(1);
        hits[i].fetch_add(1);
        return 0;
    });
    EXPECT_EQ(calls.load(), 100u);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, JobsHonorsExplicitCountAndEnvOverride)
{
    EXPECT_EQ(bench::SweepRunner(3).jobs(), 3u);
    ::setenv("HWDP_BENCH_JOBS", "2", 1);
    EXPECT_EQ(bench::sweepJobs(), 2u);
    EXPECT_EQ(bench::SweepRunner().jobs(), 2u);
    ::setenv("HWDP_BENCH_JOBS", "not-a-number", 1);
    EXPECT_GE(bench::sweepJobs(), 1u);
    ::unsetenv("HWDP_BENCH_JOBS");
    EXPECT_GE(bench::sweepJobs(), 1u);
}

TEST(SweepRunner, ZeroAndSinglePointSweepsWork)
{
    bench::SweepRunner runner(4);
    auto none = runner.map<int>(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(none.empty());
    auto one = runner.map<int>(1, [](std::size_t) { return 99; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 99);
}

} // namespace

#include "workloads/ycsb.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::workloads {

void
YcsbWorkload::serialize(sim::Serializer &s)
{
    s.section("ycsb");
    if (s.saving() && !pending.empty())
        throw sim::SerializeError(
            "checkpoint: ycsb workload is mid-request; quiesce the "
            "machine first");
    s.check(kind, "ycsb type");
    s.io(remaining);
    store.serialize(s);
}

void
DbBenchReadRandom::serialize(sim::Serializer &s)
{
    s.section("dbbench");
    if (s.saving() && !pending.empty())
        throw sim::SerializeError(
            "checkpoint: dbbench workload is mid-request; quiesce the "
            "machine first");
    s.io(remaining);
    store.serialize(s);
}

YcsbWorkload::YcsbWorkload(char type, KvStore &store, std::uint64_t n_ops,
                           unsigned max_scan)
    : kind(type), store(store), remaining(n_ops), maxScan(max_scan)
{
    if (type < 'A' || type > 'F')
        fatal("ycsb: unknown workload type '", type, "'");
    std::snprintf(name, sizeof(name), "ycsb_%c", type);

    switch (type) {
      case 'D':
        chooser = std::make_unique<LatestChooser>(store.numKeys());
        break;
      default:
        chooser = std::make_unique<ZipfianChooser>(store.numKeys());
        break;
    }
}

void
YcsbWorkload::generateRequest(sim::Rng &rng)
{
    std::uint64_t key = chooser->next(rng, store.numKeys());
    double p = rng.uniform();

    switch (kind) {
      case 'A':
        if (p < 0.5)
            store.emitRead(pending, key);
        else
            store.emitUpdate(pending, key);
        break;
      case 'B':
        if (p < 0.95)
            store.emitRead(pending, key);
        else
            store.emitUpdate(pending, key);
        break;
      case 'C':
        store.emitRead(pending, key);
        break;
      case 'D':
        if (p < 0.95)
            store.emitRead(pending, key);
        else
            store.emitInsert(pending);
        break;
      case 'E':
        if (p < 0.95) {
            auto len = static_cast<unsigned>(1 + rng.range(maxScan));
            store.emitScan(pending, key, len);
        } else {
            store.emitInsert(pending);
        }
        break;
      case 'F':
        if (p < 0.5)
            store.emitRead(pending, key);
        else
            store.emitReadModifyWrite(pending, key);
        break;
      default:
        panic("ycsb: bad type");
    }
}

Op
YcsbWorkload::next(sim::Rng &rng)
{
    if (pending.empty()) {
        if (remaining == 0)
            return Op::makeDone();
        --remaining;
        generateRequest(rng);
    }
    Op op = pending.front();
    pending.pop_front();
    return op;
}

DbBenchReadRandom::DbBenchReadRandom(KvStore &store, std::uint64_t n_ops)
    : store(store), remaining(n_ops)
{
}

Op
DbBenchReadRandom::next(sim::Rng &rng)
{
    if (pending.empty()) {
        if (remaining == 0)
            return Op::makeDone();
        --remaining;
        store.emitRead(pending, chooser.next(rng, store.numKeys()));
    }
    Op op = pending.front();
    pending.pop_front();
    return op;
}

} // namespace hwdp::workloads

#include "nvme/queue_pair.hh"

#include "sim/logging.hh"

namespace hwdp::nvme {

QueuePair::QueuePair(std::uint16_t qid, std::uint16_t depth, PAddr sq_base,
                     PAddr cq_base, Priority priority)
    : id(qid), nEntries(depth), sqBaseAddr(sq_base), cqBaseAddr(cq_base),
      prio(priority), sqRing(depth), cqRing(depth),
      cqValidPhase(depth, false)
{
    if (depth == 0)
        fatal("nvme queue pair ", qid, ": zero depth");
}

PAddr
QueuePair::cqHeadAddr() const
{
    return cqBaseAddr + static_cast<PAddr>(cqHead) *
                            CompletionEntry::wireBytes;
}

bool
QueuePair::sqFull() const
{
    return sqCount == nEntries;
}

std::uint16_t
QueuePair::sqOccupancy() const
{
    return sqCount;
}

bool
QueuePair::pushSqe(const SubmissionEntry &sqe)
{
    if (sqFull())
        return false;
    sqRing[sqTail] = sqe;
    sqTail = static_cast<std::uint16_t>((sqTail + 1) % nEntries);
    ++sqCount;
    return true;
}

bool
QueuePair::sqEmpty() const
{
    return sqCount == 0;
}

SubmissionEntry
QueuePair::popSqe()
{
    if (sqEmpty())
        panic("nvme qp ", id, ": pop from empty SQ");
    SubmissionEntry e = sqRing[sqHead];
    sqHead = static_cast<std::uint16_t>((sqHead + 1) % nEntries);
    --sqCount;
    return e;
}

bool
QueuePair::cqFull() const
{
    return cqCount == nEntries;
}

bool
QueuePair::pushCqe(CompletionEntry cqe)
{
    if (cqFull())
        return false;
    cqe.phase = cqPhase;
    cqe.sqHead = sqHead;
    cqe.sqid = id;
    cqRing[cqTail] = cqe;
    cqValidPhase[cqTail] = cqPhase;
    cqTail = static_cast<std::uint16_t>((cqTail + 1) % nEntries);
    if (cqTail == 0)
        cqPhase = !cqPhase; // wrapped: device flips its phase
    ++cqCount;
    return true;
}

bool
QueuePair::cqHasWork() const
{
    return cqCount > 0 && cqValidPhase[cqHead] == hostPhase;
}

CompletionEntry
QueuePair::popCqe()
{
    if (!cqHasWork())
        panic("nvme qp ", id, ": pop from empty CQ");
    CompletionEntry e = cqRing[cqHead];
    cqHead = static_cast<std::uint16_t>((cqHead + 1) % nEntries);
    if (cqHead == 0)
        hostPhase = !hostPhase; // wrapped: host flips expected phase
    --cqCount;
    return e;
}

} // namespace hwdp::nvme

/**
 * @file
 * Per-file page cache index.
 *
 * Maps (file id, page index) to the resident frame. In the HWDP
 * design the page cache is *eventually* updated by kpted for
 * hardware-handled misses; pages faulted by the SMU are therefore
 * invisible here until synchronised, which the tests assert.
 */

#ifndef HWDP_OS_PAGE_CACHE_HH
#define HWDP_OS_PAGE_CACHE_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class File;

class PageCache
{
  public:
    /** Look up the frame caching (file, index); invalid when absent. */
    Pfn lookup(const File &file, std::uint64_t index) const;

    /** True when (file, index) is resident in the cache. */
    bool contains(const File &file, std::uint64_t index) const;

    /** Insert a mapping. @pre not already present. */
    void insert(const File &file, std::uint64_t index, Pfn pfn);

    /** Remove a mapping. @pre present. */
    void remove(const File &file, std::uint64_t index);

    std::uint64_t size() const { return map.size(); }

    /** True when no page of any file is resident. */
    bool empty() const { return map.empty(); }

    /**
     * Account @p n lookups that are certain misses without probing
     * the map — the bulk mmap-population sweep takes this when the
     * cache is empty. Leaves nLookups/nHits (which are serialized)
     * exactly as @p n individual missing lookup() calls would.
     */
    void noteMissRun(std::uint64_t n) const { nLookups += n; }

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t hits() const { return nHits; }

    static constexpr Pfn noFrame = ~Pfn(0);

    /**
     * Pre-size the hash table for @p n resident pages (the frame
     * count bounds occupancy), so the fault-storm insert stream never
     * pays a growth rehash. Host-side only: bucket count is an
     * implementation detail, never serialized or observable.
     */
    void reserve(std::uint64_t n) { map.reserve(n); }

    /** Checkpoint the index (key-sorted for a deterministic blob). */
    void serialize(sim::Serializer &s);

  private:
    static std::uint64_t key(const File &file, std::uint64_t index);

    std::unordered_map<std::uint64_t, Pfn> map;
    mutable std::uint64_t nLookups = 0;
    mutable std::uint64_t nHits = 0;
};

} // namespace hwdp::os

#endif // HWDP_OS_PAGE_CACHE_HH

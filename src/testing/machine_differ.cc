#include "testing/machine_differ.hh"

#include <sstream>

#include "os/fault_handler.hh"
#include "os/file_system.hh"
#include "os/kernel.hh"
#include "os/page_table.hh"
#include "os/pte.hh"
#include "system/system.hh"

namespace hwdp::testing {

void
quiesce(system::System &sys)
{
    sys.stopKthreads();
    sys.eventQueue().run();

    // Untimed kpted-equivalent pass. Deliberately the *guided* scan: a
    // faulty component that forgets to mark the PMD/PUD LBA bits will
    // leave its pages unsynced here, and the differ flags them.
    os::Kernel &kern = sys.kernel();
    for (const auto &as : kern.addressSpaces()) {
        for (const auto &vma : as->vmas()) {
            as->pageTable().scanUnsynced(
                vma->start, vma->end,
                [&](VAddr va, os::EntryRef ref) {
                    kern.syncHardwareHandledPte(*as, va, ref);
                });
        }
    }
    // Syncing may enqueue writeback or shootdown events; drain again.
    sys.eventQueue().run();
}

MachineState
snapshot(system::System &sys, const std::string &label)
{
    return captureLogicalState(sys, label);
}

DiffResult
diff(const MachineState &a, const MachineState &b, const DiffOptions &opt)
{
    DiffResult r;
    std::ostringstream os;

    auto divergence = [&](const std::string &line) {
        ++r.divergences;
        if (r.divergences <= opt.maxReports)
            os << "  " << line << "\n";
    };

    os << "diff " << a.label << " vs " << b.label << ":\n";

    if (a.spaces.size() != b.spaces.size()) {
        divergence("address space count: " +
                   std::to_string(a.spaces.size()) + " vs " +
                   std::to_string(b.spaces.size()));
    } else {
        for (std::size_t s = 0; s < a.spaces.size(); ++s) {
            const AsState &as_a = a.spaces[s];
            const AsState &as_b = b.spaces[s];
            if (as_a.vmas.size() != as_b.vmas.size()) {
                divergence("as " + std::to_string(as_a.asid) +
                           ": vma count " +
                           std::to_string(as_a.vmas.size()) + " vs " +
                           std::to_string(as_b.vmas.size()));
                continue;
            }
            for (std::size_t v = 0; v < as_a.vmas.size(); ++v) {
                const VmaState &vm_a = as_a.vmas[v];
                const VmaState &vm_b = as_b.vmas[v];
                if (vm_a.pages.size() != vm_b.pages.size()) {
                    divergence("as " + std::to_string(as_a.asid) +
                               " vma " + std::to_string(v) +
                               ": page count " +
                               std::to_string(vm_a.pages.size()) +
                               " vs " +
                               std::to_string(vm_b.pages.size()));
                    continue;
                }
                for (std::size_t p = 0; p < vm_a.pages.size(); ++p) {
                    if (opt.userDataOnly) {
                        if (vm_a.pages[p].dirty != vm_b.pages[p].dirty) {
                            std::ostringstream line;
                            line << "as " << as_a.asid << " vma " << v
                                 << " page " << p << " (va 0x"
                                 << std::hex
                                 << (vm_a.start + (p << pageShift))
                                 << std::dec << "): dirty "
                                 << vm_a.pages[p].dirty << " vs "
                                 << vm_b.pages[p].dirty;
                            divergence(line.str());
                        }
                        continue;
                    }
                    if (vm_a.pages[p] == vm_b.pages[p])
                        continue;
                    std::ostringstream line;
                    line << "as " << as_a.asid << " vma " << v
                         << " page " << p << " (va 0x" << std::hex
                         << (vm_a.start + (p << pageShift))
                         << std::dec << "): "
                         << describePageState(vm_a.pages[p]) << "  |  "
                         << describePageState(vm_b.pages[p]);
                    divergence(line.str());
                }
            }
        }
    }

    if (a.totalAppOps != b.totalAppOps)
        divergence("total app ops: " + std::to_string(a.totalAppOps) +
                   " vs " + std::to_string(b.totalAppOps));
    if (a.oomKills != b.oomKills)
        divergence("oom kills: " + std::to_string(a.oomKills) + " vs " +
                   std::to_string(b.oomKills));
    if (opt.compareFaultTotals && a.faultsServiced != b.faultsServiced)
        divergence("faults serviced: " +
                   std::to_string(a.faultsServiced) + " vs " +
                   std::to_string(b.faultsServiced));

    if (r.divergences > opt.maxReports)
        os << "  ... " << (r.divergences - opt.maxReports)
           << " further divergences suppressed\n";

    r.equivalent = r.divergences == 0;
    r.report = r.equivalent ? std::string() : os.str();
    return r;
}

void
dumpMachineStats(system::System &sys, std::ostream &os)
{
    os::Kernel &kern = sys.kernel();
    kern.stats().dump(os);
    kern.scheduler().stats().dump(os);
    kern.blockLayer().stats().dump(os);
    for (unsigned d = 0; d < sys.numSsds(); ++d)
        sys.ssdAt(d).stats().dump(os);
    for (unsigned s = 0; s < sys.numSockets(); ++s) {
        if (core::Smu *smu = sys.smuAt(s)) {
            smu->stats().dump(os);
            smu->hostController().stats().dump(os);
        }
        if (core::SoftwareSmu *sw = sys.softwareSmuAt(s))
            sw->stats().dump(os);
    }
    for (unsigned c = 0; c < sys.config().nLogical; ++c)
        sys.core(c).mmu().stats().dump(os);

    // NUMA-only counters: emitted only on multi-socket machines so the
    // single-socket dump stays byte-identical to the pre-NUMA one (the
    // differential gate depends on that).
    if (sys.numSockets() > 1) {
        for (const system::Socket &sk : sys.socketTopology()) {
            os << "socket" << sk.id
               << ".shootdownEpoch " << sk.shootdownEpoch << "\n"
               << "socket" << sk.id << ".remoteShootdownsIn "
               << sk.remoteShootdownsIn << "\n"
               << "socket" << sk.id << ".shootdownsDropped "
               << sk.shootdownsDropped << "\n"
               << "socket" << sk.id << ".shootdownsDelayed "
               << sk.shootdownsDelayed << "\n";
            if (sk.smu)
                os << "socket" << sk.id << ".smu.remoteRequests "
                   << sk.smu->remoteRequests() << "\n";
        }
        std::uint64_t remote_dram = 0, remote_walk = 0;
        for (unsigned c = 0; c < sys.config().nLogical; ++c) {
            remote_dram += sys.core(c).mmu().remoteDramAccesses();
            remote_walk +=
                sys.core(c).mmu().walker().remoteWalkSteps();
        }
        os << "numa.remoteDramAccesses " << remote_dram << "\n"
           << "numa.remoteWalkSteps " << remote_walk << "\n";
        if (core::Kpted *kt = sys.kpted())
            os << "numa.shootdownIpisSent " << kt->shootdownIpisSent()
               << "\n";
    }

    // Translation-reach counters: emitted only when a page mode is on,
    // so the pageMode=off dump stays byte-identical to the seed (the
    // identity gate depends on that).
    if (sys.config().pageMode != PageMode::off) {
        const os::Kernel &k = sys.kernel();
        os << "pagemode.thpFaults " << k.thpFaults() << "\n"
           << "pagemode.napotPromotions " << k.napotPromotions() << "\n"
           << "pagemode.napotBreaks " << k.napotBreaks() << "\n"
           << "pagemode.hugePromotions " << k.hugePromotions() << "\n"
           << "pagemode.hugeSplits " << k.hugeSplits() << "\n"
           << "pagemode.hugeReclaims " << k.hugeReclaims() << "\n"
           << "pagemode.tlbWideHits " << sys.totalTlbWideHits() << "\n"
           << "pagemode.wideShootdownsDelayed "
           << sys.wideShootdownsDelayed() << "\n";
        if (core::Kcoalesced *kc = sys.kcoalesced())
            os << "pagemode.kcoalesced.windowsScanned "
               << kc->windowsScanned() << "\n"
               << "pagemode.kcoalesced.windowsPromoted "
               << kc->windowsPromoted() << "\n"
               << "pagemode.kcoalesced.promotionsAborted "
               << kc->promotionsAborted() << "\n";
    }
}

} // namespace hwdp::testing

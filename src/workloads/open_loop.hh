/**
 * @file
 * Open-loop KV serving: arrivals at a configured rate, not at the
 * completion rate.
 *
 * The paper's throughput figures are closed-loop (each thread issues
 * its next request when the previous one finishes), which hides
 * queueing: a slow mode simply issues fewer requests. A serving
 * experiment needs the opposite — requests arrive on a Poisson
 * schedule at a configured offered load whether or not the machine
 * keeps up, and latency is measured from the *scheduled arrival* to
 * completion, so queueing delay under overload is visible (the
 * latency-vs-offered-load hockey stick).
 *
 * OpenLoopSource pre-generates the whole arrival schedule from its
 * own forked rng (exponential gaps at the aggregate rate) and deals
 * arrivals round-robin to the server threads, so the schedule is a
 * pure function of the seed — independent of simThreads, socket
 * count and completion order. Each OpenLoopServer is a Workload
 * pulled by one ThreadContext: it idles until its next arrival is
 * due, then emits the request's op sequence through the shared
 * KvStore recipes (zipfian or latest key choice, read/update mix),
 * and records completion-minus-arrival latency into its reservoir at
 * appOpDone time.
 */

#ifndef HWDP_WORKLOADS_OPEN_LOOP_HH
#define HWDP_WORKLOADS_OPEN_LOOP_HH

#include <deque>
#include <memory>
#include <vector>

#include "metrics/latency_reservoir.hh"
#include "workloads/key_chooser.hh"
#include "workloads/kv_store.hh"
#include "workloads/workload.hh"

namespace hwdp::workloads {

struct OpenLoopParams
{
    /** Aggregate offered load across every server thread (ops/s). */
    double offeredOpsPerSec = 100'000.0;

    /** Total requests in the schedule (across all servers). */
    std::uint64_t totalRequests = 20'000;

    unsigned nServers = 1;

    /** Read fraction; the rest are updates (WAL write + record). */
    double readFrac = 0.95;

    /** Key popularity: scrambled zipfian, or "latest" (YCSB-D). */
    bool latestChooser = false;
    double zipfTheta = 0.99;

    /** Per-server latency reservoir capacity. */
    std::size_t reservoirCapacity = 1 << 14;
};

class OpenLoopSource
{
  public:
    /**
     * @param schedule_rng Forked once for the arrival schedule; the
     *        per-request randomness (keys, mix) comes from each
     *        server thread's own rng at draw time.
     */
    OpenLoopSource(KvStore &store, const OpenLoopParams &p,
                   sim::Rng schedule_rng);

    KvStore &kv() { return store; }
    const OpenLoopParams &params() const { return prm; }
    KeyChooser &chooser() { return *keyChooser; }

    const std::vector<Tick> &
    arrivalsFor(unsigned server) const
    {
        return schedule.at(server);
    }

    /** First scheduled arrival across all servers (0 if none). */
    Tick firstArrival() const { return first; }
    /** Last scheduled arrival across all servers. */
    Tick lastArrival() const { return last; }

  private:
    KvStore &store;
    OpenLoopParams prm;
    std::unique_ptr<KeyChooser> keyChooser;
    std::vector<std::vector<Tick>> schedule;
    Tick first = 0;
    Tick last = 0;
};

class OpenLoopServer : public Workload
{
  public:
    OpenLoopServer(OpenLoopSource &source, unsigned server_idx);

    Op next(sim::Rng &rng) override { return next(rng, 0); }
    Op next(sim::Rng &rng, Tick now) override;
    void appOpDone(Tick now) override;
    const char *label() const override { return "open_loop"; }

    std::uint64_t served() const { return nServed; }
    Tick lastCompletion() const { return lastDone; }
    metrics::LatencyReservoir &latency() { return lat; }
    const metrics::LatencyReservoir &latency() const { return lat; }

    /**
     * Checkpoint the serving cursor and the reservoir. The arrival
     * schedule is regenerated at boot from the same seed and is
     * verified, not stored.
     */
    void serialize(sim::Serializer &s) override;

  private:
    OpenLoopSource &src;
    unsigned idx;
    std::deque<Op> pending;
    std::uint64_t cursor = 0;   ///< Next unserved arrival index.
    Tick curArrival = 0;        ///< Scheduled arrival of the open request.
    bool requestOpen = false;
    std::uint64_t nServed = 0;
    Tick lastDone = 0;
    metrics::LatencyReservoir lat;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_OPEN_LOOP_HH

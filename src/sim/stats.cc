#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::sim {

void
Counter::serialize(Serializer &s)
{
    s.io(val);
}

void
Mean::serialize(Serializer &s)
{
    s.io(sum);
    s.io(n);
    s.io(mn);
    s.io(mx);
}

void
Histogram::serialize(Serializer &s)
{
    // Geometry is fixed at construction: verify, never resize.
    s.check(width, "histogram bucket width");
    std::uint64_t nb = bins.size();
    s.check(nb, "histogram bucket count");
    s.ioRange(bins.begin(), bins.end());
    s.io(n);
    s.io(sum);
}

void
StatGroup::serialize(Serializer &s)
{
    std::uint64_t count = all.size();
    s.check(count, "stat count");
    for (StatBase *st : all) {
        std::uint64_t tag = Serializer::hashName(st->name().c_str());
        std::uint64_t stored = tag;
        s.io(stored);
        if (s.loading() && stored != tag)
            throw SerializeError("stat group '" + _name +
                                 "' layout changed: blob stat does not "
                                 "match '" + st->name() + "'");
        st->serialize(s);
    }
}

std::string
Counter::valueString() const
{
    return std::to_string(val);
}

std::string
Mean::valueString() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << mean() << " (n=" << n
       << ", min=" << minValue() << ", max=" << maxValue() << ")";
    return os.str();
}

Histogram::Histogram(std::string name, std::string desc, double bucket_width,
                     std::size_t n_buckets)
    : StatBase(std::move(name), std::move(desc)), width(bucket_width),
      bins(n_buckets + 1, 0)
{
    if (bucket_width <= 0.0 || n_buckets == 0)
        panic("histogram '", this->name(), "' has degenerate geometry");
}

void
Histogram::sample(double v)
{
    ++n;
    sum += v;
    auto idx = static_cast<std::size_t>(std::max(v, 0.0) / width);
    if (idx >= bins.size())
        idx = bins.size() - 1; // overflow bucket
    ++bins[idx];
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen >= target) {
            // Midpoint of the bucket keeps the estimate unbiased.
            return (static_cast<double>(i) + 0.5) * width;
        }
    }
    return static_cast<double>(bins.size()) * width;
}

std::string
Histogram::valueString() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << "mean=" << mean()
       << " p50=" << quantile(0.5) << " p99=" << quantile(0.99)
       << " (n=" << n << ")";
    return os.str();
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    n = 0;
    sum = 0.0;
}

StatGroup::~StatGroup()
{
    for (StatBase *s : all)
        delete s;
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    auto *c = new Counter(name, desc);
    all.push_back(c);
    return *c;
}

Mean &
StatGroup::mean(const std::string &name, const std::string &desc)
{
    auto *m = new Mean(name, desc);
    m->reset();
    all.push_back(m);
    return *m;
}

Histogram &
StatGroup::histogram(const std::string &name, const std::string &desc,
                     double bucket_width, std::size_t n_buckets)
{
    auto *h = new Histogram(name, desc, bucket_width, n_buckets);
    all.push_back(h);
    return *h;
}

StatBase *
StatGroup::find(const std::string &name) const
{
    for (StatBase *s : all) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

void
StatGroup::resetAll()
{
    for (StatBase *s : all)
        s->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const StatBase *s : all) {
        os << _name << '.' << s->name() << " = " << s->valueString()
           << "  # " << s->desc() << '\n';
    }
}

} // namespace hwdp::sim

#include "cpu/thread_context.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hwdp::cpu {

ThreadContext::ThreadContext(std::string name, unsigned core,
                             os::Kernel &kernel, Mmu &mmu,
                             mem::CacheHierarchy &caches,
                             mem::BranchPredictor &bp,
                             os::AddressSpace &as,
                             workloads::Workload &workload,
                             const CoreParams &params, sim::Rng rng)
    : os::Thread(std::move(name), core), kernel(kernel), mmuRef(mmu),
      caches(caches), bp(bp), as(as), workload(workload), prm(params),
      rng(rng), physCore(kernel.scheduler().physCoreOf(core)),
      memLat("mem_latency_us", "per-access latency (us)", 0.5, 400),
      faultedOpLat("faulted_op_latency_us",
                   "app-op latency when a page miss occurred (us)", 0.5,
                   400)
{
}

void
ThreadContext::run()
{
    if (!startedFlag) {
        startedFlag = true;
        started = kernel.now();
    }
    if (hasResumeAction()) {
        takeResumeAction()();
        return;
    }
    nextOp();
}

bool
ThreadContext::handleOom()
{
    // The faulting access never completes; the thread terminates the
    // way an OOM-killed process does. The fault path runs entirely in
    // this thread's context, so it is still current on its core and
    // finish() is legal here.
    wasOomKilled = true;
    isDone = true;
    finished = kernel.now();
    kernel.scheduler().finish(this);
    if (onFinished)
        onFinished();
    return true;
}

void
ThreadContext::nextOp()
{
    if (isDone)
        return;

    // Operation boundary: let pending interrupt work run (it borrows
    // this context, no full context switch).
    if (kernel.scheduler().kernelWorkPending(core())) {
        setResumeAction([this] { nextOp(); });
        kernel.scheduler().preemptForKernelWork(this);
        return;
    }

    workloads::Op op = workload.next(rng);
    if (!appOpOpen && op.kind != workloads::Op::Kind::done) {
        appOpOpen = true;
        appOpFaulted = false;
        appOpStart = kernel.now();
    }
    switch (op.kind) {
      case workloads::Op::Kind::compute:
        execCompute(op.compute, [this, op] { completeOp(op); });
        return;

      case workloads::Op::Kind::mem: {
        Tick start = kernel.now();
        ++nMemOps;
        mmuRef.access(*this, as, op.addr, op.write,
                      [this, op, start](AccessInfo info) {
                          memLat.sample(toMicroseconds(info.latency));
                          if (info.faulted) {
                              appOpFaulted = true;
                              ++nFaulted;
                              faultStall += kernel.now() - start;
                              if (info.hwHandled)
                                  ++nHwHandled;
                          } else {
                              uCycles += info.latency / prm.cyclePeriod;
                              mCycles += info.latency / prm.cyclePeriod;
                          }
                          completeOp(op);
                      });
        return;
      }

      case workloads::Op::Kind::fileWrite:
        kernel.writeFile(*this, *op.file, op.pageIndex, op.bytes,
                         [this, op] { completeOp(op); });
        return;

      case workloads::Op::Kind::msync:
        kernel.msyncVma(*this, op.vma, [this, op] { completeOp(op); });
        return;

      case workloads::Op::Kind::idle:
        kernel.eventQueue().postIn(
            op.idleTicks, [this, op] { completeOp(op); }, "tc.idle");
        return;

      case workloads::Op::Kind::done:
        isDone = true;
        finished = kernel.now();
        kernel.scheduler().finish(this);
        if (onFinished)
            onFinished();
        return;
    }
    panic("thread '", name(), "': unhandled op kind");
}

void
ThreadContext::completeOp(const workloads::Op &op)
{
    if (op.endsAppOp) {
        ++nAppOps;
        if (appOpFaulted)
            faultedOpLat.sample(toMicroseconds(kernel.now() -
                                               appOpStart));
        appOpOpen = false;
    }
    nextOp();
}

void
ThreadContext::execCompute(const workloads::ComputeSpec &spec,
                           std::function<void()> done)
{
    // Issue-slot share depends on what the SMT sibling is doing right
    // now (sampled at burst start; bursts are short).
    double share = kernel.scheduler().widthShare(core());

    Cycles extra = 0;
    Cycles data_stall = 0;

    // Data references: mostly the hot set, occasionally the cold
    // region (two-level working-set model).
    auto n_refs = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.memRefFrac);
    for (std::uint64_t i = 0; i < n_refs; ++i) {
        VAddr a;
        if (spec.coldBytes > 0 && rng.chance(spec.coldFrac)) {
            a = spec.hotBase + spec.hotBytes +
                (rng.range(spec.coldBytes) & ~7ULL);
        } else {
            a = spec.hotBase + (rng.range(spec.hotBytes) & ~7ULL);
        }
        auto r = caches.access(physCore, a, false, ExecMode::user);
        if (r.latency > prm.l1HitLatency)
            data_stall += r.latency - prm.l1HitLatency;
    }
    // Overlapped misses (memory-level parallelism) hide part of the
    // data-stall cycles.
    extra += static_cast<Cycles>(static_cast<double>(data_stall) /
                                 std::max(spec.mlp, 1.0));

    // Instruction fetch: one line per 16 instructions, streaming over
    // the text footprint.
    std::uint64_t n_lines = spec.instructions / 16 + 1;
    std::uint64_t text_lines = std::max<std::uint64_t>(
        spec.textBytes / lineSize, 1);
    for (std::uint64_t i = 0; i < n_lines; ++i) {
        VAddr a = spec.textBase + ((fetchSeq + i) % text_lines) * lineSize;
        auto r = caches.access(physCore, a, true, ExecMode::user);
        if (r.latency > prm.l1HitLatency)
            extra += r.latency - prm.l1HitLatency;
    }
    // Cold-path fetches (rare branches, library calls) from a 1 MB
    // region: the workload's intrinsic L1I miss floor.
    for (std::uint32_t i = 0; i < spec.icacheColdLines; ++i) {
        VAddr a = spec.textBase + 0x100'0000 +
                  ((fetchSeq * 13 + i * 67) % 16384) * lineSize;
        auto r = caches.access(physCore, a, true, ExecMode::user);
        if (r.latency > prm.l1HitLatency)
            extra += r.latency - prm.l1HitLatency;
    }
    fetchSeq += n_lines;

    // Branches through the shared predictor. Per-site outcomes are
    // strongly biased (branchBias = taken probability), so the
    // baseline misprediction rate is ~(1 - bias) and kernel pollution
    // of the history register / pattern table shows up as extra
    // mispredictions after each OS entry.
    auto n_br = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.branchFrac);
    std::uint64_t mispred = 0;
    for (std::uint64_t i = 0; i < n_br; ++i) {
        std::uint64_t site = rng.range(spec.staticBranches);
        std::uint64_t pc = spec.textBase + site * 16;
        bool taken = rng.chance(spec.branchBias);
        if (!bp.predictAndUpdate(pc, taken, ExecMode::user))
            ++mispred;
    }

    auto base = static_cast<Cycles>(
        static_cast<double>(spec.instructions) * prm.baseCpi);
    Cycles cycles = base + extra + mispred * prm.mispredPenalty;
    auto duration = static_cast<Tick>(
        static_cast<double>(cycles * prm.cyclePeriod) / share);

    uInstr += spec.instructions;
    uCycles += duration / prm.cyclePeriod; // wall cycles in user mode
    cCycles += duration / prm.cyclePeriod;

    kernel.eventQueue().postIn(duration, std::move(done),
                                         "tc.compute");
}

} // namespace hwdp::cpu

/**
 * @file
 * Section V extensions, implemented and measured (the paper sketches
 * these as discussion/future work):
 *
 *  1. anonymous-page acceleration — a reserved LBA marks first-touch
 *     pages; the SMU zero-fills without any I/O;
 *  2. sequential prefetch in the SMU — on a demand miss, also fill
 *     the next page when it is still LBA-augmented;
 *  3. timeout-based exception for long-latency I/O — bound the
 *     pipeline-stall time on slow devices by falling back to a
 *     context switch.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct TouchPages : workloads::Workload
{
    os::Vma *vma;
    std::uint64_t n;
    std::uint64_t i = 0;
    TouchPages(os::Vma *v, std::uint64_t n) : vma(v), n(n) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= n)
            return workloads::Op::makeDone();
        return workloads::Op::makeMem(vma->start + (i++) * pageSize,
                                      true, true);
    }
    const char *label() const override { return "touch"; }
};

} // namespace

int
main()
{
    metrics::banner("Extension 1: anonymous first-touch acceleration",
                    "reserved zero-fill LBA, SMU bypasses I/O "
                    "(Section V)");
    {
        const system::PagingMode modes[] = {system::PagingMode::osdp,
                                            system::PagingMode::hwdp};
        bench::SweepRunner runner;
        auto lats = runner.map<double>(2, [&](std::size_t i) {
            auto cfg = bench::paperConfig(modes[i]);
            system::System sys(cfg);
            auto anon = sys.mapAnon(8192);
            auto *wl = sys.makeWorkload<TouchPages>(anon.vma, 8192);
            auto *tc = sys.addThread(*wl, 0, *anon.as);
            sys.runUntilThreadsDone(seconds(30.0));
            return tc->faultedOpLatencyUs().mean();
        });
        Table t({"scheme", "mean first-touch latency us",
                 "handled by"});
        for (std::size_t i = 0; i < 2; ++i)
            t.addRow({system::pagingModeName(modes[i]),
                      Table::num(lats[i], 2),
                      modes[i] == system::PagingMode::hwdp
                          ? "SMU zero-fill engine"
                          : "OS minor-fault path"});
        t.print();
    }

    metrics::banner("Extension 2: SMU sequential prefetch",
                    "next-page fill on demand misses; PMSHR coalescing "
                    "absorbs the race");
    {
        struct PfResult
        {
            std::uint64_t faultedOps = 0;
            double meanAccessUs = 0;
            std::uint64_t prefetches = 0;
        };
        bench::SweepRunner runner;
        auto results = runner.map<PfResult>(2, [](std::size_t i) {
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.smu.sequentialPrefetch = i == 1;
            cfg.kpooldPeriod = microseconds(500.0);
            system::System sys(cfg);
            auto mf = sys.mapDataset("f", 64 * 1024);
            auto *wl = sys.makeWorkload<workloads::FioWorkload>(
                mf.vma, 8000, 300, /*sequential=*/true);
            auto *tc = sys.addThread(*wl, 0, *mf.as);
            sys.runUntilThreadsDone(seconds(60.0));
            return PfResult{tc->faultedOps(),
                            tc->memLatencyUs().mean(),
                            sys.smu()->prefetches()};
        });
        Table t({"prefetch", "faulting ops", "mean access us",
                 "prefetches issued"});
        for (std::size_t i = 0; i < 2; ++i)
            t.addRow({i ? "on" : "off",
                      std::to_string(results[i].faultedOps),
                      Table::num(results[i].meanAccessUs, 2),
                      std::to_string(results[i].prefetches)});
        t.print();
    }

    metrics::banner("Extension 3: timeout exception for slow devices",
                    "bound the pipeline stall; co-located work regains "
                    "the core");
    {
        const char *profiles[] = {"zssd", "hdd"};
        struct ToResult
        {
            std::uint64_t stallTimeouts = 0;
            double corunnerMInstr = 0;
        };
        bench::SweepRunner runner;
        auto results = runner.map<ToResult>(4, [&](std::size_t i) {
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.ssdProfile = profiles[i / 2];
            cfg.hwStallTimeout = i % 2 ? microseconds(50.0) : 0;
            system::System sys(cfg);
            auto mf = sys.mapDataset("f", 16 * bench::defaultMemFrames);
            auto *io =
                sys.makeWorkload<workloads::FioWorkload>(mf.vma, 0);
            sys.addThread(*io, 0, *mf.as);
            auto *spin = sys.makeWorkload<workloads::SpecLikeWorkload>(
                "x264_like", 0);
            auto *spin_as = sys.kernel().createAddressSpace();
            auto *spin_tc = sys.addThread(*spin, 0, *spin_as);

            sys.runFor(milliseconds(20.0));
            return ToResult{sys.core(0).mmu().stallTimeouts(),
                            static_cast<double>(
                                spin_tc->userInstructions()) /
                                1e6};
        });
        Table t({"device", "timeout", "stall timeouts",
                 "co-runner user instr (M)"});
        for (std::size_t i = 0; i < 4; ++i)
            t.addRow({profiles[i / 2], i % 2 ? "50 us" : "off",
                      std::to_string(results[i].stallTimeouts),
                      Table::num(results[i].corunnerMInstr, 2)});
        t.print();
        std::printf("\nexpected: on the HDD the timeout converts "
                    "multi-millisecond stalls into context switches, "
                    "letting the co-runner on the same logical core "
                    "execute; on the Z-SSD it never fires\n");
    }
    return 0;
}

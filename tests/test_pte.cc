/**
 * @file
 * Tests for the LBA-augmented PTE encoding (paper Figure 6 / Table I).
 */

#include <gtest/gtest.h>

#include "os/pte.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::os::pte;

TEST(Pte, EmptyEntryIsOsHandledMiss)
{
    Entry e = 0;
    EXPECT_FALSE(isPresent(e));
    EXPECT_FALSE(hasLbaBit(e));
    EXPECT_TRUE(isOsHandledMiss(e));
    EXPECT_FALSE(isLbaAugmented(e));
    EXPECT_FALSE(needsMetadataSync(e));
}

TEST(Pte, PresentEncodingRoundTrips)
{
    Entry e = makePresent(0x12345, writableBit | userBit);
    EXPECT_TRUE(isPresent(e));
    EXPECT_FALSE(hasLbaBit(e));
    EXPECT_EQ(pfnOf(e), 0x12345u);
    EXPECT_TRUE(isWritable(e));
    EXPECT_FALSE(isAccessed(e));
    EXPECT_FALSE(isDirty(e));
}

TEST(Pte, LbaBitIsBitTen)
{
    // The paper's real-machine prototype uses bit 10.
    EXPECT_EQ(lbaBit, 1ULL << 10);
}

TEST(Pte, HardwareHandledStateKeepsLbaBit)
{
    Entry e = makePresent(0x77, writableBit, true);
    EXPECT_TRUE(isPresent(e));
    EXPECT_TRUE(hasLbaBit(e));
    EXPECT_TRUE(needsMetadataSync(e));
    EXPECT_FALSE(isLbaAugmented(e)); // it is present
    Entry synced = clearLbaBit(e);
    EXPECT_FALSE(needsMetadataSync(synced));
    EXPECT_EQ(pfnOf(synced), 0x77u);
}

TEST(Pte, LbaAugmentedFieldWidths)
{
    // 3-bit SID, 3-bit device id, 41-bit LBA (Section III-B).
    Entry e = makeLbaAugmented(7, 7, maxLba, 0);
    EXPECT_EQ(socketIdOf(e), 7u);
    EXPECT_EQ(deviceIdOf(e), 7u);
    EXPECT_EQ(lbaOf(e), maxLba);
    EXPECT_EQ(maxLba, (1ULL << 41) - 1);
}

TEST(Pte, LbaAugmentedPreservesProtection)
{
    Entry e = makeLbaAugmented(1, 2, 0x999, writableBit | userBit |
                                               nxBit);
    EXPECT_TRUE(isWritable(e));
    EXPECT_EQ(protectionOf(e), writableBit | userBit | nxBit);
    EXPECT_FALSE(isPresent(e));
    EXPECT_TRUE(isLbaAugmented(e));
}

TEST(Pte, FieldsDoNotOverlapControlBits)
{
    // An all-ones LBA must not leak into the present/LBA/protection
    // bits.
    Entry e = makeLbaAugmented(7, 7, maxLba, 0);
    EXPECT_FALSE(isPresent(e));
    EXPECT_TRUE(hasLbaBit(e));
    EXPECT_FALSE(isWritable(e));
}

TEST(Pte, TableOneSemantics)
{
    // The four PTE rows of Table I map to mutually exclusive states.
    Entry os_miss = 0;
    Entry hw_miss = makeLbaAugmented(0, 0, 5, 0);
    Entry hw_done = makePresent(9, 0, true);
    Entry synced = makePresent(9, 0, false);

    for (Entry e : {os_miss, hw_miss, hw_done, synced}) {
        int states = (isOsHandledMiss(e) ? 1 : 0) +
                     (isLbaAugmented(e) ? 1 : 0) +
                     (needsMetadataSync(e) ? 1 : 0) +
                     ((isPresent(e) && !hasLbaBit(e)) ? 1 : 0);
        EXPECT_EQ(states, 1) << "entry " << e;
    }
}

TEST(Pte, SetAndClearLbaBitAreInverses)
{
    Entry e = makePresent(0x1234, writableBit);
    EXPECT_EQ(clearLbaBit(setLbaBit(e)), e);
}

struct LbaTriple
{
    unsigned sid;
    unsigned dev;
    Lba lba;
};

class PteRoundTrip : public ::testing::TestWithParam<LbaTriple>
{
};

TEST_P(PteRoundTrip, EncodeDecode)
{
    auto [sid, dev, lba] = GetParam();
    Entry e = makeLbaAugmented(sid, dev, lba, writableBit);
    EXPECT_EQ(socketIdOf(e), sid);
    EXPECT_EQ(deviceIdOf(e), dev);
    EXPECT_EQ(lbaOf(e), lba);
    EXPECT_TRUE(isLbaAugmented(e));
}

INSTANTIATE_TEST_SUITE_P(
    Corners, PteRoundTrip,
    ::testing::Values(LbaTriple{0, 0, 0}, LbaTriple{7, 0, 1},
                      LbaTriple{0, 7, 2}, LbaTriple{3, 5, 0xdeadbeef},
                      LbaTriple{7, 7, (1ULL << 41) - 1},
                      LbaTriple{1, 2, 1ULL << 40}));

TEST(Pte, RandomRoundTrips)
{
    sim::Rng rng(2024);
    for (int i = 0; i < 10000; ++i) {
        unsigned sid = static_cast<unsigned>(rng.range(8));
        unsigned dev = static_cast<unsigned>(rng.range(8));
        Lba lba = rng.range(maxLba + 1);
        Entry e = makeLbaAugmented(sid, dev, lba, userBit);
        ASSERT_EQ(socketIdOf(e), sid);
        ASSERT_EQ(deviceIdOf(e), dev);
        ASSERT_EQ(lbaOf(e), lba);
    }
}

TEST(Pte, RandomPfnRoundTrips)
{
    sim::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        Pfn pfn = rng.range(1ULL << 40);
        Entry e = makePresent(pfn, writableBit, rng.chance(0.5));
        ASSERT_EQ(pfnOf(e), pfn);
        ASSERT_TRUE(isPresent(e));
    }
}

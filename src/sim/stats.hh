/**
 * @file
 * Lightweight statistics framework.
 *
 * Components expose named statistics grouped under a StatGroup. A
 * Counter accumulates an integer total, a Mean tracks sum/count, and a
 * Histogram buckets samples for latency distributions. Groups register
 * their stats so a whole machine can be dumped uniformly.
 */

#ifndef HWDP_SIM_STATS_HH
#define HWDP_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace hwdp::sim {

class Serializer;

/** Common interface for dumpable statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {
    }
    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render the value portion of a dump line. */
    virtual std::string valueString() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Checkpoint the value state (never the name/description). */
    virtual void serialize(Serializer &s) = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically adjustable integral counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t n) { val += n; return *this; }

    std::uint64_t value() const { return val; }
    void set(std::uint64_t v) { val = v; }

    std::string valueString() const override;
    void reset() override { val = 0; }
    void serialize(Serializer &s) override;

  private:
    std::uint64_t val = 0;
};

/** Mean of samples with min/max tracking. */
class Mean : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum += v;
        ++n;
        if (v < mn)
            mn = v;
        if (v > mx)
            mx = v;
    }

    std::uint64_t count() const { return n; }
    double total() const { return sum; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double minValue() const { return n ? mn : 0.0; }
    double maxValue() const { return n ? mx : 0.0; }

    std::string valueString() const override;
    void serialize(Serializer &s) override;

    void
    reset() override
    {
        sum = 0.0;
        n = 0;
        mn = std::numeric_limits<double>::max();
        mx = std::numeric_limits<double>::lowest();
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
    double mn = std::numeric_limits<double>::max();
    double mx = std::numeric_limits<double>::lowest();
};

/**
 * Fixed-width linear histogram with overflow bucket; also tracks the
 * exact mean so percentile reporting stays honest about resolution.
 */
class Histogram : public StatBase
{
  public:
    Histogram(std::string name, std::string desc, double bucket_width,
              std::size_t n_buckets);

    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Approximate quantile (e.g. 0.99) by bucket interpolation. */
    double quantile(double q) const;

    const std::vector<std::uint64_t> &buckets() const { return bins; }
    double bucketWidth() const { return width; }

    std::string valueString() const override;
    void reset() override;
    void serialize(Serializer &s) override;

  private:
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t n = 0;
    double sum = 0.0;
};

/** A named collection of statistics belonging to one component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    Counter &counter(const std::string &name, const std::string &desc);
    Mean &mean(const std::string &name, const std::string &desc);
    Histogram &histogram(const std::string &name, const std::string &desc,
                         double bucket_width, std::size_t n_buckets);

    const std::string &name() const { return _name; }
    const std::vector<StatBase *> &stats() const { return all; }

    /** Find a stat by name; nullptr when absent. */
    StatBase *find(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;

    /**
     * Checkpoint every registered stat in registration order. The
     * stat count and each stat's name tag are verified on load, so a
     * component that gains or loses stats invalidates old blobs
     * loudly instead of shifting the stream.
     */
    void serialize(Serializer &s);

    ~StatGroup();
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

  private:
    std::string _name;
    std::vector<StatBase *> all;
};

} // namespace hwdp::sim

#endif // HWDP_SIM_STATS_HH

/**
 * @file
 * Figure 2: the shrinking CPU-storage performance gap.
 *
 * The paper's figure plots historical trends (from Bryant & O'Hallaron)
 * showing disk access falling from tens of millions of CPU cycles to
 * tens of thousands with ultra-low-latency SSDs. We regenerate the
 * table from the device profiles the simulator itself uses, expressed
 * in cycles of the 2.8 GHz evaluation CPU.
 */

#include <cstdio>

#include "metrics/report.hh"
#include "ssd/ssd_profile.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner("Figure 2: storage access time in CPU cycles",
                    "2.8 GHz CPU; the gap shrinks ~1000x");

    const double cycles_per_us = 2800.0;
    Table t({"device", "era", "4KB access", "CPU cycles"});

    struct Row
    {
        const char *profile;
        const char *era;
    };
    for (const Row &r : std::initializer_list<Row>{
             {"hdd", "~2005"},
             {"sata_ssd", "~2010"},
             {"nvme_flash", "~2015"},
             {"zssd", "2018"},
             {"optane_ssd", "2018"},
             {"optane_pmm", "2019"}}) {
        auto p = ssd::profileByName(r.profile);
        double us = toMicroseconds(p.unloadedRead4k());
        char acc[32];
        if (us >= 1000.0)
            std::snprintf(acc, sizeof(acc), "%.1f ms", us / 1000.0);
        else
            std::snprintf(acc, sizeof(acc), "%.1f us", us);
        char cyc[32];
        std::snprintf(cyc, sizeof(cyc), "%.0f", us * cycles_per_us);
        t.addRow({p.name, r.era, acc, cyc});
    }
    t.print();
    std::printf("\npaper shape: tens of millions of cycles (disk) down "
                "to tens of thousands (ULL SSDs) while CPU cycle time "
                "flattened\n");
    return 0;
}

/**
 * @file
 * Event-driven NVMe SSD device model.
 *
 * The device owns a set of I/O queue pairs. Hosts push submission
 * entries into a queue pair's SQ ring and ring the SQ doorbell; the
 * device fetches commands (priority queues first), services them on a
 * set of parallel internal channels, DMAs the data, writes a CQ entry
 * and then either raises an interrupt (the kernel's queues) or lets
 * the registered listener observe the CQ write directly (the SMU's
 * snooping completion unit, Section III-C).
 */

#ifndef HWDP_SSD_SSD_DEVICE_HH
#define HWDP_SSD_SSD_DEVICE_HH

#include <functional>
#include <memory>
#include <vector>

#include "nvme/queue_pair.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "ssd/ssd_profile.hh"

namespace hwdp::sim {
class ShardPool;
}

namespace hwdp::ssd {

/** Per-command fault decision returned by an IoFaultInjector. */
struct IoFaultDecision
{
    /** NVMe status for the completion entry; 0 = success. */
    std::uint16_t status = 0;
    /** Extra ticks added between media done and the CQ write. */
    Tick extraLatency = 0;
    /** Ticks the command's channel is stalled before servicing. */
    Tick channelStall = 0;
};

/**
 * Fault-injection hook the device consults while servicing commands.
 * Declared here (not in src/testing) so the device model carries no
 * dependency on the test library; testing::FaultPlan implements it.
 */
class IoFaultInjector
{
  public:
    virtual ~IoFaultInjector() = default;

    /** Decide the fate of one fetched command. */
    virtual IoFaultDecision onCommand(const nvme::SubmissionEntry &sqe,
                                      std::uint16_t qid) = 0;

    /**
     * Delay added to the device's command fetch for a doorbell write
     * on @p qid; 0 = deliver normally. Models a dropped/deferred
     * doorbell while preserving forward progress.
     */
    virtual Tick doorbellDropDelay(std::uint16_t qid) = 0;
};

class SsdDevice : public sim::SimObject
{
  public:
    /**
     * Invoked when a completion becomes visible to the host.
     * For interrupt-driven queues this fires interruptLatency after
     * the CQ write; for snooped queues it fires at the CQ write itself.
     */
    using CompletionListener =
        std::function<void(std::uint16_t qid,
                           const nvme::CompletionEntry &cqe)>;

    SsdDevice(std::string name, sim::EventQueue &eq,
              const SsdProfile &profile, sim::Rng rng);

    /**
     * Create an I/O queue pair.
     * @param depth      Ring depth.
     * @param prio       Arbitration class; urgent queues are fetched
     *                   first (the SMU queue uses this).
     * @param interrupts True for the kernel's interrupt-driven queues;
     *                   false for SMU queues whose completion unit
     *                   snoops the CQ memory write.
     * @return the queue id.
     */
    std::uint16_t createQueuePair(std::uint16_t depth, nvme::Priority prio,
                                  bool interrupts);

    nvme::QueuePair &queuePair(std::uint16_t qid);
    const nvme::QueuePair &queuePair(std::uint16_t qid) const;

    /** Register the host-side completion listener for a queue. */
    void setCompletionListener(std::uint16_t qid, CompletionListener fn);

    /**
     * Host doorbell write: tells the device queue @p qid has new SQ
     * entries. The PCIe register write itself is timed by the caller;
     * this starts the device-side fetch.
     */
    void ringSqDoorbell(std::uint16_t qid);

    /**
     * Doorbell write landing at logical time @p at (>= now()). The
     * inline fault fast path rings doorbells from within an earlier
     * event; when the device-side fetch would complete before the next
     * scheduled event it runs inline too, saving the "ssd.fetch" hop.
     * ringSqDoorbell(qid) is exactly ringSqDoorbellAt(qid, now()).
     */
    void ringSqDoorbellAt(std::uint16_t qid, Tick at);

    /** Host doorbell write after consuming CQ entries (bookkeeping). */
    void ringCqDoorbell(std::uint16_t qid);

    const SsdProfile &profile() const { return prof; }

    /** Commands currently being serviced or queued inside the device. */
    std::uint64_t inflight() const { return nInflight; }

    /** In-device commands fetched from queue @p qid specifically. */
    std::uint64_t queueInflight(std::uint16_t qid) const;

    std::uint64_t readsCompleted() const { return nReads; }
    std::uint64_t writesCompleted() const { return nWrites; }
    std::uint64_t errorsCompleted() const { return nErrors; }

    /** Attach (or clear, with nullptr) the fault injector. */
    void setFaultInjector(IoFaultInjector *inj) { injector = inj; }

    /**
     * Fast-path mode: inline fetch after a doorbell when the timing
     * gate allows, and batched snooped-queue completions through the
     * pooled pending list + single drain event. Off (the default)
     * keeps the event-per-hop reference behaviour; simulated results
     * are bit-identical either way.
     */
    void setFastPath(bool on) { fastPath = on; }
    bool fastPathEnabled() const { return fastPath; }

    /**
     * Defer service computation (media jitter, channel serialisation,
     * completion dues) of pure snooped-queue fetch batches to shard
     * pool slot @p slot. Joined before any dependent state is touched;
     * the deferral never changes simulated results, only which host
     * thread runs the arithmetic. Requires fast-path mode.
     */
    void setServiceLane(sim::ShardPool *pool, unsigned slot);

    /** Join an outstanding deferred service batch (no-op when idle). */
    void joinService();

    // ---- Host-side observability (never part of simulated state) ----
    std::uint64_t doorbellRings() const { return nDoorbellRings; }
    std::uint64_t doorbellsCoalesced() const
    {
        return nDoorbellsCoalesced;
    }
    std::uint64_t inlineFetches() const { return nInlineFetches; }
    std::uint64_t pooledPendingHighWater() const
    {
        return pendingHighWater;
    }
    std::uint64_t pooledNodesCreated() const { return cmdPool.size(); }
    std::uint64_t serviceBatchesDeferred() const
    {
        return nDeferredBatches;
    }
    unsigned serviceLaneSlot() const { return laneSlot; }

    /**
     * Checkpoint the device: RNG, channel busy horizon, queue rings
     * and counters. The device must be idle (no in-flight commands,
     * no pending doorbells or pooled completions, no scheduled fetch).
     */
    void serialize(sim::Serializer &s);

    ~SsdDevice();

  private:
    struct QueueState
    {
        std::unique_ptr<nvme::QueuePair> qp;
        bool interrupts = true;
        CompletionListener listener;
        bool doorbellPending = false;
        std::uint64_t inflight = 0;
    };

    SsdProfile prof;
    sim::Rng rng;
    std::vector<QueueState> queues;
    std::vector<Tick> channelFreeAt;
    std::uint64_t nInflight = 0;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nErrors = 0;
    bool fetchScheduled = false;
    IoFaultInjector *injector = nullptr;

    // ---- Fast-path machinery (host-side; simulated results are
    // bit-identical to the reference path) --------------------------
    bool fastPath = false;
    sim::ShardPool *lanePool = nullptr;
    unsigned laneSlot = 0;
    bool laneBusy = false;

    /** One fetched command awaiting service computation. */
    struct Staged
    {
        nvme::SubmissionEntry sqe;
        std::uint32_t qidx = 0;
        IoFaultDecision fault;
        Tick at = 0;
    };
    std::vector<Staged> staged; ///< Reused fetch-batch buffer.

    /** One serviced snooped-queue command awaiting its CQ write. */
    struct PendingCmd
    {
        nvme::SubmissionEntry sqe;
        std::uint32_t qidx = 0;
        std::uint16_t status = 0;
        Tick issued = 0;
        Tick due = 0;
    };
    std::vector<PendingCmd> cmdPool;       ///< Node storage.
    std::vector<std::uint32_t> cmdFree;    ///< Free node indices.
    std::vector<std::uint32_t> livePending; ///< Nodes in service order.
    std::vector<PendingCmd> dueBatch;      ///< Reused drain scratch.
    sim::Event *drainEv = nullptr;
    Tick drainAt = 0;

    std::uint64_t nDoorbellRings = 0;
    std::uint64_t nDoorbellsCoalesced = 0;
    std::uint64_t nInlineFetches = 0;
    std::uint64_t pendingHighWater = 0;
    std::uint64_t nDeferredBatches = 0;

    sim::Counter &statReads;
    sim::Counter &statWrites;
    sim::Counter &statErrors;
    sim::Histogram &statDeviceTime;

    /** Fetch pending commands from all doorbelled queues. */
    void fetchCommands();

    /** Fetch running at logical time @p at (== now() off fast path). */
    void fetchCommandsAt(Tick at);

    /** Service every staged command, in fetch order. */
    void serviceStaged();

    /** Service one staged command: jitter, channel, route completion. */
    void serviceOne(const Staged &s);

    /** Keep the drain event scheduled no later than @p t. */
    void scheduleDrain(Tick t);

    /** Drain event body: complete every pooled command now due. */
    void drainFired();

    /** Finish a command: CQ write, then interrupt or snoop delivery. */
    void complete(std::size_t qidx, const nvme::SubmissionEntry &sqe,
                  Tick issued, std::uint16_t status);

    QueueState &state(std::uint16_t qid);
};

} // namespace hwdp::ssd

#endif // HWDP_SSD_SSD_DEVICE_HH

/**
 * @file
 * Set-associative cache tag array with true-LRU replacement.
 *
 * Only tags are modelled (no data), which is all the paper's
 * microarchitectural-pollution analysis needs: the OS fault handler
 * evicts user-application lines, and the resulting extra user misses
 * show up as reduced user-level IPC (Figures 4 and 14).
 */

#ifndef HWDP_MEM_CACHE_ARRAY_HH
#define HWDP_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::mem {

class CacheArray
{
  public:
    /**
     * @param name       For diagnostics.
     * @param size_bytes Total capacity; must be assoc * n_sets * line.
     * @param assoc      Ways per set.
     * @param line_bytes Line size (default 64 B).
     */
    CacheArray(std::string name, std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes = 64);

    /**
     * Look up @p addr, allocating on miss.
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Look up without allocating or updating recency. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate a single line if present; returns true if it was. */
    bool invalidate(std::uint64_t addr);

    /** Drop all contents (e.g. on simulated power events / tests). */
    void flush();

    /** Number of valid lines currently resident. */
    std::uint64_t occupancy() const;

    std::uint64_t sizeBytes() const { return bytes; }
    unsigned associativity() const { return ways; }
    unsigned numSets() const { return sets; }
    unsigned lineBytes() const { return line; }
    const std::string &name() const { return label; }

    std::uint64_t hitCount() const { return hits; }
    std::uint64_t missCount() const { return misses; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; // LRU timestamp
        bool valid = false;
    };

    std::string label;
    std::uint64_t bytes;
    unsigned ways;
    unsigned line;
    unsigned sets;
    unsigned lineShiftBits;
    std::vector<Way> entries; // sets * ways, row-major by set
    std::uint64_t useClock = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
};

} // namespace hwdp::mem

#endif // HWDP_MEM_CACHE_ARRAY_HH

/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator models time in integer ticks of one picosecond, the
 * same convention gem5 uses. All latency parameters elsewhere in the
 * code are expressed with the helpers below so that the units are
 * visible at the point of use.
 */

#ifndef HWDP_SIM_TYPES_HH
#define HWDP_SIM_TYPES_HH

#include <cstdint>

namespace hwdp {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of CPU clock cycles (frequency-dependent). */
using Cycles = std::uint64_t;

/** Virtual address of a simulated process. */
using VAddr = std::uint64_t;

/** Physical (host DRAM) address in the simulated machine. */
using PAddr = std::uint64_t;

/** Logical block address on a simulated storage device. */
using Lba = std::uint64_t;

/** Physical frame number (PAddr >> pageShift). */
using Pfn = std::uint64_t;

/** The maximum representable tick; used as "never scheduled". */
inline constexpr Tick maxTick = ~Tick(0);

/**
 * Privilege mode of simulated execution. The paper's indirect-cost
 * analysis hinges on separating user-mode microarchitectural behaviour
 * from the kernel activity that pollutes it, so every cache and branch
 * predictor access is attributed to one of these.
 */
enum class ExecMode { user, kernel };

/** Page geometry: the design targets 4 KB pages (Section V). */
inline constexpr unsigned pageShift = 12;
inline constexpr std::uint64_t pageSize = 1ULL << pageShift;
inline constexpr std::uint64_t pageOffsetMask = pageSize - 1;

/** Cache-line geometry used by the tag-array models. */
inline constexpr unsigned lineShift = 6;
inline constexpr std::uint64_t lineSize = 1ULL << lineShift;

/** One picosecond is one tick. */
inline constexpr Tick tickPerPs = 1;

/** Convert common time units to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * 1000.0 + 0.5);
}

constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * 1000.0 * 1000.0 + 0.5);
}

constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * 1000.0 * 1000.0 * 1000.0 + 0.5);
}

constexpr Tick
seconds(double s)
{
    return static_cast<Tick>(s * 1e12 + 0.5);
}

/** Convert ticks back to floating-point time units for reporting. */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e12;
}

} // namespace hwdp

#endif // HWDP_SIM_TYPES_HH

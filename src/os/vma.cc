#include "os/vma.hh"

#include <algorithm>

#include "os/file_system.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
AddressSpace::serialize(sim::Serializer &s)
{
    s.section("addrspace");
    s.check(asid, "address space id");
    std::uint64_t n = areas.size();
    s.check(n, "vma count");
    for (auto &vma : areas) {
        s.check(vma->start, "vma start");
        s.check(vma->end, "vma end");
        std::uint32_t fileId = vma->file ? vma->file->id() : ~0u;
        s.check(fileId, "vma backing file");
        s.check(vma->filePageOffset, "vma file offset");
        s.check(vma->fastMmap, "vma fast-mmap flag");
        s.check(vma->prot, "vma protection");
    }
    s.io(nextMapBase);
    pt.serialize(s);
}

AddressSpace::AddressSpace(std::uint32_t id) : asid(id)
{
}

Vma *
AddressSpace::addVma(File *file, std::uint64_t file_page_offset,
                     std::uint64_t n_pages, bool fast_mmap, pte::Entry prot)
{
    if (n_pages == 0)
        fatal("addVma: zero-length mapping");
    auto vma = std::make_unique<Vma>();
    vma->start = nextMapBase;
    vma->end = nextMapBase + n_pages * pageSize;
    vma->file = file;
    vma->filePageOffset = file_page_offset;
    vma->fastMmap = fast_mmap;
    vma->prot = prot;
    nextMapBase = vma->end + pageSize; // one-page guard gap
    areas.push_back(std::move(vma));
    return areas.back().get();
}

void
AddressSpace::removeVma(Vma *vma)
{
    auto it = std::find_if(areas.begin(), areas.end(),
                           [vma](const auto &p) { return p.get() == vma; });
    if (it == areas.end())
        panic("removeVma: VMA not part of this address space");
    areas.erase(it);
}

Vma *
AddressSpace::findVma(VAddr va)
{
    for (auto &vma : areas) {
        if (vma->contains(va))
            return vma.get();
    }
    return nullptr;
}

} // namespace hwdp::os

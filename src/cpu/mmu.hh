/**
 * @file
 * Memory management unit: TLB + walker + page-miss routing.
 *
 * The MMU performs every user memory access for one logical core:
 * TLB lookup, page-table walk on a miss, then — for a non-present
 * page — either the conventional exception (OSDP) or a page-miss
 * request to the SMU identified by the PTE's socket id (HWDP,
 * Section III). While the SMU works, the core's pipeline is stalled:
 * the thread keeps the logical core but consumes no issue slots,
 * which the scheduler's width-share model exposes to the SMT sibling.
 */

#ifndef HWDP_CPU_MMU_HH
#define HWDP_CPU_MMU_HH

#include <functional>
#include <vector>

#include "cpu/tlb.hh"
#include "cpu/walker.hh"
#include "os/kernel.hh"
#include "sim/sim_object.hh"

namespace hwdp::cpu {

/** A page-miss request handed to an SMU (Section III-C, Figure 7). */
struct PageMissRequest
{
    os::WalkRefs refs;       ///< PUD entry, PMD entry and PTE refs.
    unsigned sid = 0;
    unsigned dev = 0;
    Lba lba = 0;
    os::AddressSpace *as = nullptr;
    VAddr vaddr = 0;
    unsigned core = 0;       ///< Requesting logical core.

    /** Set for SMU-generated prefetch fills (no walker waits). */
    bool isPrefetch = false;

    /** Invoked with success=false when the SMU must bounce to the OS. */
    std::function<void(bool success)> done;
};

/** Implemented by core::Smu (and test fakes). */
class PageMissHandlerIface
{
  public:
    virtual ~PageMissHandlerIface() = default;
    virtual void handleMiss(PageMissRequest req) = 0;
};

/** Outcome summary delivered with the access completion. */
struct AccessInfo
{
    bool faulted = false;     ///< Any miss handling happened.
    bool hwHandled = false;   ///< Handled by the SMU without the OS.
    Tick latency = 0;         ///< Total access latency.
};

class Mmu : public sim::SimObject
{
  public:
    Mmu(std::string name, sim::EventQueue &eq, unsigned logical_core,
        mem::CacheHierarchy &caches, os::Kernel &kernel,
        Tick cycle_period);

    /**
     * Register the SMU responsible for socket @p sid (PTEs carry the
     * socket id of their home SMU).
     */
    void attachSmu(unsigned sid, PageMissHandlerIface *smu);

    /**
     * Long-latency remedy (Section V): when a hardware miss stalls
     * the pipeline longer than this, raise a timeout exception and
     * context-switch; the completion wakes the thread. 0 disables.
     */
    void setStallTimeout(Tick t) { stallTimeout = t; }
    Tick stallTimeoutTicks() const { return stallTimeout; }

    std::uint64_t stallTimeouts() const { return statTimeout.value(); }

    /**
     * Perform a user memory access on behalf of thread @p t.
     * @p done fires when the data is available.
     */
    void access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                bool is_write, std::function<void(AccessInfo)> done);

    Tlb &tlb() { return tlbUnit; }
    Walker &walker() { return walkUnit; }

    std::uint64_t hwMisses() const { return statHwMiss.value(); }
    std::uint64_t osFaults() const { return statOsFault.value(); }
    std::uint64_t smuRejections() const { return statSmuReject.value(); }

  private:
    unsigned core;
    unsigned physCore;
    mem::CacheHierarchy &caches;
    os::Kernel &kernel;
    Tick period;
    Tick stallTimeout = 0;
    Tlb tlbUnit;
    Walker walkUnit;
    std::vector<PageMissHandlerIface *> smus; // by socket id

    sim::Counter &statAccesses;
    sim::Counter &statHwMiss;
    sim::Counter &statOsFault;
    sim::Counter &statSmuReject;
    sim::Counter &statTimeout;

    void doAccess(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                  bool is_write, Tick start, AccessInfo info,
                  unsigned attempts, std::function<void(AccessInfo)> done);

    /** Data access through the hierarchy once translated. */
    Tick dataAccess(VAddr vaddr, Pfn pfn, bool is_write);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_MMU_HH

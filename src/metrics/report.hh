/**
 * @file
 * Aligned-table printing for the bench harness.
 *
 * Every figure/table bench prints its rows through this so the
 * regenerated output looks uniform and is easy to diff against
 * EXPERIMENTS.md.
 */

#ifndef HWDP_METRICS_REPORT_HH
#define HWDP_METRICS_REPORT_HH

#include <string>
#include <vector>

namespace hwdp::os {
class KernelExec;
}

namespace hwdp::sim {
class ShardPool;
}

namespace hwdp::system {
class System;
}

namespace hwdp::metrics {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience for mixed numeric rows. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns to stdout. */
    void print() const;

    /** Render to a string (tests use this). */
    std::string toString() const;

  private:
    std::vector<std::string> hdr;
    std::vector<std::vector<std::string>> rows;
};

/** Print a section banner for a figure/table reproduction. */
void banner(const std::string &title, const std::string &subtitle = "");

/**
 * Per-KernelCostCat pollution observability: one row per category
 * that issued any pollution, with the cache tag-array probes and
 * branch-predictor updates it caused, plus a total row. This is the
 * simulator-hot-path work the batched pollution engine streams, so
 * benches print it next to their timing numbers to show where the
 * probes come from.
 */
Table pollutionProbeTable(const os::KernelExec &kexec);

/**
 * Parallel-mode host observability: lanes, sharded regions and region
 * tasks executed, async side tasks run. Pure host-side counters —
 * deliberately not part of dumpMachineStats, which must stay
 * byte-identical across simThreads values.
 */
Table shardPoolTable(const sim::ShardPool &pool);

/**
 * One checkpoint operation as seen by a bench: a save or restore of a
 * warmed machine. ticksSkipped is the simulated time the blob
 * carries — the warmup a forked run does not re-simulate.
 */
struct CheckpointRow
{
    std::string label; ///< Family key (e.g. "fio osdp t4").
    std::string op;    ///< "save" or "restore".
    std::uint64_t blobBytes = 0;
    std::uint64_t ticksSkipped = 0;
};

/**
 * Checkpoint observability for the warm-fork benches: one row per
 * save/restore with the blob size and the warmed simulated time each
 * fork skips, plus a total row. Host-side only, like shardPoolTable —
 * never part of dumpMachineStats.
 */
Table checkpointTable(const std::vector<CheckpointRow> &ops);

/**
 * Demand-paging fast-path observability: inline-fault hits (SMU
 * lookups, controller doorbells/completions, device fetches that
 * skipped their event hop), pooled-command occupancy, doorbell
 * coalescing, and per-lane service-batch utilization when a shard
 * pool is active. All host-side counters, never part of
 * dumpMachineStats — simulated results are identical whether every
 * row is zero (fast path off) or not.
 */
Table pagingPathTable(system::System &sys);

/**
 * Translation-reach observability for the huge-page modes: wide-entry
 * TLB hit share, THP fault-time allocations, NAPOT window
 * promotions/breaks, kcoalesced scan/promote/abort counts, and the
 * split/reclaim/delayed-shootdown tallies. All host-side counters;
 * meaningful only when the machine's pageMode is not off (an off
 * machine prints a table of zeros).
 */
Table translationReachTable(system::System &sys);

} // namespace hwdp::metrics

#endif // HWDP_METRICS_REPORT_HH

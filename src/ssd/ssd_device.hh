/**
 * @file
 * Event-driven NVMe SSD device model.
 *
 * The device owns a set of I/O queue pairs. Hosts push submission
 * entries into a queue pair's SQ ring and ring the SQ doorbell; the
 * device fetches commands (priority queues first), services them on a
 * set of parallel internal channels, DMAs the data, writes a CQ entry
 * and then either raises an interrupt (the kernel's queues) or lets
 * the registered listener observe the CQ write directly (the SMU's
 * snooping completion unit, Section III-C).
 */

#ifndef HWDP_SSD_SSD_DEVICE_HH
#define HWDP_SSD_SSD_DEVICE_HH

#include <functional>
#include <memory>
#include <vector>

#include "nvme/queue_pair.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "ssd/ssd_profile.hh"

namespace hwdp::ssd {

/** Per-command fault decision returned by an IoFaultInjector. */
struct IoFaultDecision
{
    /** NVMe status for the completion entry; 0 = success. */
    std::uint16_t status = 0;
    /** Extra ticks added between media done and the CQ write. */
    Tick extraLatency = 0;
    /** Ticks the command's channel is stalled before servicing. */
    Tick channelStall = 0;
};

/**
 * Fault-injection hook the device consults while servicing commands.
 * Declared here (not in src/testing) so the device model carries no
 * dependency on the test library; testing::FaultPlan implements it.
 */
class IoFaultInjector
{
  public:
    virtual ~IoFaultInjector() = default;

    /** Decide the fate of one fetched command. */
    virtual IoFaultDecision onCommand(const nvme::SubmissionEntry &sqe,
                                      std::uint16_t qid) = 0;

    /**
     * Delay added to the device's command fetch for a doorbell write
     * on @p qid; 0 = deliver normally. Models a dropped/deferred
     * doorbell while preserving forward progress.
     */
    virtual Tick doorbellDropDelay(std::uint16_t qid) = 0;
};

class SsdDevice : public sim::SimObject
{
  public:
    /**
     * Invoked when a completion becomes visible to the host.
     * For interrupt-driven queues this fires interruptLatency after
     * the CQ write; for snooped queues it fires at the CQ write itself.
     */
    using CompletionListener =
        std::function<void(std::uint16_t qid,
                           const nvme::CompletionEntry &cqe)>;

    SsdDevice(std::string name, sim::EventQueue &eq,
              const SsdProfile &profile, sim::Rng rng);

    /**
     * Create an I/O queue pair.
     * @param depth      Ring depth.
     * @param prio       Arbitration class; urgent queues are fetched
     *                   first (the SMU queue uses this).
     * @param interrupts True for the kernel's interrupt-driven queues;
     *                   false for SMU queues whose completion unit
     *                   snoops the CQ memory write.
     * @return the queue id.
     */
    std::uint16_t createQueuePair(std::uint16_t depth, nvme::Priority prio,
                                  bool interrupts);

    nvme::QueuePair &queuePair(std::uint16_t qid);
    const nvme::QueuePair &queuePair(std::uint16_t qid) const;

    /** Register the host-side completion listener for a queue. */
    void setCompletionListener(std::uint16_t qid, CompletionListener fn);

    /**
     * Host doorbell write: tells the device queue @p qid has new SQ
     * entries. The PCIe register write itself is timed by the caller;
     * this starts the device-side fetch.
     */
    void ringSqDoorbell(std::uint16_t qid);

    /** Host doorbell write after consuming CQ entries (bookkeeping). */
    void ringCqDoorbell(std::uint16_t qid);

    const SsdProfile &profile() const { return prof; }

    /** Commands currently being serviced or queued inside the device. */
    std::uint64_t inflight() const { return nInflight; }

    /** In-device commands fetched from queue @p qid specifically. */
    std::uint64_t queueInflight(std::uint16_t qid) const;

    std::uint64_t readsCompleted() const { return nReads; }
    std::uint64_t writesCompleted() const { return nWrites; }
    std::uint64_t errorsCompleted() const { return nErrors; }

    /** Attach (or clear, with nullptr) the fault injector. */
    void setFaultInjector(IoFaultInjector *inj) { injector = inj; }

    /**
     * Checkpoint the device: RNG, channel busy horizon, queue rings
     * and counters. The device must be idle (no in-flight commands,
     * no pending doorbells, no scheduled fetch).
     */
    void serialize(sim::Serializer &s);

  private:
    struct QueueState
    {
        std::unique_ptr<nvme::QueuePair> qp;
        bool interrupts = true;
        CompletionListener listener;
        bool doorbellPending = false;
        std::uint64_t inflight = 0;
    };

    SsdProfile prof;
    sim::Rng rng;
    std::vector<QueueState> queues;
    std::vector<Tick> channelFreeAt;
    std::uint64_t nInflight = 0;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nErrors = 0;
    bool fetchScheduled = false;
    IoFaultInjector *injector = nullptr;

    sim::Counter &statReads;
    sim::Counter &statWrites;
    sim::Counter &statErrors;
    sim::Histogram &statDeviceTime;

    /** Fetch pending commands from all doorbelled queues. */
    void fetchCommands();

    /** Start servicing one command fetched from queue @p qidx. */
    void serviceCommand(std::size_t qidx, const nvme::SubmissionEntry &sqe);

    /** Finish a command: CQ write, then interrupt or snoop delivery. */
    void complete(std::size_t qidx, const nvme::SubmissionEntry &sqe,
                  Tick issued, std::uint16_t status);

    QueueState &state(std::uint16_t qid);
};

} // namespace hwdp::ssd

#endif // HWDP_SSD_SSD_DEVICE_HH

/**
 * @file
 * Host worker pool for deterministic intra-machine parallelism.
 *
 * The sweep harness already parallelises *across* independent
 * simulated machines; the ShardPool parallelises *within* one. It is
 * the execution substrate of the parallel simulation mode
 * (MachineConfig::simThreads): a persistent set of host threads that
 * execute sharded batch work — cache-level set shards, the
 * branch-predictor side lane — published by the simulation thread,
 * with a barrier at the end of every region.
 *
 * The pool is host machinery only. Which lane executes which shard
 * never influences simulated state: work is partitioned by simulated
 * structure (cache set index), every shard's effects are confined to
 * its own partition, and all cross-shard aggregation (counter sums,
 * miss-list compaction) happens on the simulation thread after the
 * barrier, in canonical run order. DESIGN.md section 6g carries the
 * full argument; the parallel differential suite enforces it.
 *
 * Synchronisation contract (what TSan checks): region effects are
 * published by the per-task release increments of the done counter
 * and acquired by the simulation thread's barrier spin, so everything
 * a task wrote happens-before the caller's first read after
 * parallelFor returns. The async lane hands off through the state
 * variable the same way.
 */

#ifndef HWDP_SIM_SHARD_POOL_HH
#define HWDP_SIM_SHARD_POOL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace hwdp::sim {

class ShardPool
{
  public:
    /**
     * @param n_lanes Total execution lanes, including the calling
     *                (simulation) thread: n_lanes - 1 host workers are
     *                spawned. Must be in [2, maxLanes].
     */
    explicit ShardPool(unsigned n_lanes);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    static constexpr unsigned maxLanes = 64;

    /** Execution lanes, including the caller. */
    unsigned lanes() const { return nLanes; }

    using TaskFn = void (*)(void *ctx, unsigned task);

    /**
     * Run fn(ctx, t) for every t in [0, n_tasks), distributing tasks
     * over the caller and the workers. Barrier: returns only after
     * every task completed, with all task effects visible to the
     * caller. Tasks must write disjoint state. Must be called from
     * the simulation thread only (one region at a time).
     */
    void run(unsigned n_tasks, TaskFn fn, void *ctx);

    /** Type-erased convenience over run(); @p f must be reentrant. */
    template <typename F>
    void
    parallelFor(unsigned n_tasks, F &&f)
    {
        run(
            n_tasks,
            [](void *c, unsigned t) {
                (*static_cast<std::remove_reference_t<F> *>(c))(t);
            },
            &f);
    }

    /**
     * Independent async side lanes. Each slot carries at most one task
     * at a time; distinct slots run concurrently with each other, with
     * the caller, and with parallelFor regions. Slot 0 is the legacy
     * launchAsync/joinAsync lane (the branch-predictor side lane);
     * the paging pipeline gives each SSD device its own slot.
     */
    static constexpr unsigned maxAsyncSlots = 8;

    /**
     * Post one side task on @p slot. Claimed by an idle worker, or
     * executed by the caller inside joinAsyncSlot() if none got to it
     * — so progress never depends on a worker being runnable. @p fn
     * and @p ctx must stay alive until joinAsyncSlot(slot) returns.
     */
    void launchAsyncSlot(unsigned slot, TaskFn fn, void *ctx);

    /**
     * Wait for slot @p slot's task (executing it here if unclaimed).
     * Its effects are visible to the caller on return. No-op when
     * nothing is posted.
     */
    void joinAsyncSlot(unsigned slot);

    /** Legacy single-lane API: slot 0. */
    void launchAsync(TaskFn fn, void *ctx)
    {
        launchAsyncSlot(0, fn, ctx);
    }

    template <typename F>
    void
    launchAsync(F &f)
    {
        launchAsync(
            [](void *c, unsigned) { (*static_cast<F *>(c))(); }, &f);
    }

    void joinAsync() { joinAsyncSlot(0); }

    // ---- Host-side observability (never part of simulated state) ----
    std::uint64_t regionsRun() const { return nRegions; }
    std::uint64_t regionTasksRun() const { return nRegionTasks; }
    std::uint64_t asyncTasksRun() const { return nAsync; }

    /** Tasks posted on @p slot over the pool's lifetime. */
    std::uint64_t asyncPosted(unsigned slot) const
    {
        return slots[slot].nPosted;
    }

    /**
     * Of those, how many a worker claimed (the rest ran on the
     * simulation thread inside the join) — the lane utilization
     * numerator in the paging-path report.
     */
    std::uint64_t asyncWorkerRuns(unsigned slot) const
    {
        return slots[slot].nWorkerRuns.load(std::memory_order_relaxed);
    }

  private:
    unsigned nLanes;
    std::vector<std::thread> workers;

    /**
     * Wake epoch: bumped (with notify) whenever there is new work — a
     * region or an async post — and on shutdown. Workers sleep on it.
     */
    std::atomic<std::uint64_t> gen{0};
    std::atomic<bool> stopFlag{false};

    // Current region. Fields are written by the simulation thread
    // only while no valid region is published (regGen == 0) and no
    // worker is between active++/active-- — see run().
    TaskFn regFn = nullptr;
    void *regCtx = nullptr;
    unsigned regTasks = 0;
    std::atomic<unsigned> regNext{0};
    std::atomic<unsigned> regDone{0};

    /**
     * Epoch of the published region (0 = none). A worker joins a
     * region only when this matches the wake epoch it observed, which
     * is what makes a straggler from an old wake-up harmless: it can
     * never mistake the next region's fields for its own.
     */
    std::atomic<std::uint64_t> regGen{0};

    /** Workers currently inside the region-claim window. */
    std::atomic<unsigned> active{0};

    // Async side lanes: state is 0 idle, 1 posted, 2 claimed, 3 done.
    struct AsyncSlot
    {
        TaskFn fn = nullptr;
        void *ctx = nullptr;
        std::atomic<unsigned> state{0};
        std::uint64_t nPosted = 0; // written by the sim thread only
        std::atomic<std::uint64_t> nWorkerRuns{0};
    };
    std::array<AsyncSlot, maxAsyncSlots> slots;

    std::uint64_t nRegions = 0;
    std::uint64_t nRegionTasks = 0;
    std::uint64_t nAsync = 0;

    void workerLoop();
    void help();
    bool tryClaimAsync(unsigned slot, bool worker);
};

} // namespace hwdp::sim

#endif // HWDP_SIM_SHARD_POOL_HH

/**
 * @file
 * Base class for simulated components.
 *
 * A SimObject owns a StatGroup named after itself and keeps a pointer
 * to the machine's EventQueue so subclasses can schedule events and
 * read the current tick without global state.
 */

#ifndef HWDP_SIM_SIM_OBJECT_HH
#define HWDP_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace hwdp::sim {

class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    EventQueue &eventQueue() { return eq; }
    Tick now() const { return eq.now(); }

  protected:
    EventQueue &eq;

  private:
    std::string _name;
    StatGroup _stats;
};

} // namespace hwdp::sim

#endif // HWDP_SIM_SIM_OBJECT_HH

#include "os/kernel_phases.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/shard_pool.hh"

namespace hwdp::os {

void
KernelExec::serialize(sim::Serializer &s)
{
    s.section("kernelexec");
    constexpr unsigned n = static_cast<unsigned>(KernelCostCat::numCats);
    for (unsigned i = 0; i < n; ++i)
        s.io(instrByCat[i]);
    for (unsigned i = 0; i < n; ++i)
        s.io(cyclesByCat[i]);
    for (unsigned i = 0; i < n; ++i)
        s.io(probesByCat[i]);
    for (unsigned i = 0; i < n; ++i)
        s.io(branchesByCat[i]);
    s.io(invocation);
    rng.serialize(s);
}

const char *
kernelCostCatName(KernelCostCat cat)
{
    switch (cat) {
      case KernelCostCat::faultPath: return "fault_path";
      case KernelCostCat::ioStack: return "io_stack";
      case KernelCostCat::contextSwitch: return "context_switch";
      case KernelCostCat::irq: return "irq";
      case KernelCostCat::metadata: return "metadata";
      case KernelCostCat::syscall: return "syscall";
      case KernelCostCat::kpted: return "kpted";
      case KernelCostCat::kpoold: return "kpoold";
      case KernelCostCat::reclaim: return "reclaim";
      case KernelCostCat::other: return "other";
      default: return "?";
    }
}

namespace phases {

// Cycle budgets assume the evaluation machine's 2.8 GHz clock
// (2800 cycles ~ 1 us). The before-device sum (exceptionEntry +
// vmaLookup + pageAlloc + ioSubmit) is ~2.2 us and the after-device
// critical path (irqDeliver + ioComplete + wakeupSched + contextSwitch
// + metadataUpdate + pteUpdateReturn) is ~6.1 us, matching the
// Figure 3 / Figure 11(a) decomposition against a 10.9 us device time.

const KernelPhase exceptionEntry =
    {"exception_entry", 750, 380, 16, 14, 40, KernelCostCat::faultPath};
const KernelPhase vmaLookup =
    {"vma_lookup", 480, 240, 12, 16, 30, KernelCostCat::faultPath};
const KernelPhase pageAlloc =
    {"page_alloc", 1600, 800, 20, 30, 60, KernelCostCat::faultPath};
const KernelPhase ioSubmit =
    {"io_submit", 3400, 1700, 60, 50, 150, KernelCostCat::ioStack};
const KernelPhase contextSwitch =
    {"context_switch", 3000, 950, 50, 45, 80,
     KernelCostCat::contextSwitch};
const KernelPhase irqDeliver =
    {"irq_deliver", 770, 260, 12, 10, 20, KernelCostCat::irq};
const KernelPhase ioComplete =
    {"io_complete", 6800, 2900, 85, 75, 230, KernelCostCat::ioStack};
const KernelPhase wakeupSched =
    {"wakeup_sched", 1450, 520, 20, 18, 40, KernelCostCat::contextSwitch};
const KernelPhase metadataUpdate =
    {"metadata_update", 3600, 1700, 30, 60, 120, KernelCostCat::metadata};
const KernelPhase pteUpdateReturn =
    {"pte_update_return", 1400, 600, 15, 20, 45,
     KernelCostCat::faultPath};

const KernelPhase minorFaultFill =
    {"minor_fault_fill", 1900, 900, 30, 30, 80, KernelCostCat::faultPath};
const KernelPhase syscallEntryExit =
    {"syscall_entry_exit", 600, 280, 10, 8, 20, KernelCostCat::syscall};
const KernelPhase writeSyscall =
    {"write_syscall", 4200, 2100, 70, 65, 170, KernelCostCat::syscall};
const KernelPhase mmapSetupPerPage =
    {"mmap_setup_per_page", 90, 60, 2, 3, 8, KernelCostCat::syscall};

const KernelPhase reclaimScanPage =
    {"reclaim_scan_page", 220, 120, 4, 6, 12, KernelCostCat::reclaim};
const KernelPhase writebackSubmit =
    {"writeback_submit", 1800, 900, 30, 28, 75, KernelCostCat::reclaim};
const KernelPhase writebackComplete =
    {"writeback_complete", 1200, 600, 20, 18, 45,
     KernelCostCat::reclaim};

// kpted synchronises metadata in batch: per page it performs the full
// set of updates the inline fault path spreads across metadataUpdate,
// the page-cache insertion inside ioComplete and the PTE write — plus
// the LBA-bit clear. The instruction count is calibrated so the
// end-to-end Figure 15 kernel-instruction reduction lands near the
// paper's 62.6%; the batched loop's cache-friendly CPI (1.4 vs ~2.1
// inline) is the "kpted cycles benefit from batching" effect.
const KernelPhase kptedPerPage =
    {"kpted_per_page", 5500, 3950, 14, 30, 65, KernelCostCat::kpted};
// Scanning is cheap per entry: one cache line covers eight PTEs and
// the guided walk touches little else.
const KernelPhase kptedScanEntry =
    {"kpted_scan_entry", 3, 2, 0, 1, 2, KernelCostCat::kpted};
const KernelPhase kpooldPerPage =
    {"kpoold_per_page", 420, 260, 5, 9, 16, KernelCostCat::kpoold};
// Cross-socket TLB/PWC shootdown: one IPI to a remote socket plus the
// remote handler's invalidation work, charged on the initiating core
// (the initiator spins until the remote acknowledges). ~0.5 us at
// 2.8 GHz, the usual smp_call_function cost. Multi-socket machines
// only — single-socket shootdowns stay IPI-free as before.
const KernelPhase shootdownIpi =
    {"shootdown_ipi", 1400, 520, 10, 8, 35, KernelCostCat::irq};

// kcoalesced (Mosaic-style transparent coalescing, pageMode=coalesce).
// The window check reads up to one cache line per eight PTEs but
// early-outs on the first ineligible entry, so the common sparse
// window is cheap; a promotion rewrites the PMD, flags 512 struct
// pages and issues the shootdown bookkeeping — khugepaged-like cost.
// Charged to the kpted bucket: adding a Figure-15 category would
// change the accounting-array layout for every machine, including
// pageMode=off ones that must stay byte-identical.
const KernelPhase coalesceScan =
    {"kcoalesced_scan_window", 160, 90, 3, 8, 14, KernelCostCat::kpted};
const KernelPhase coalescePromote =
    {"kcoalesced_promote", 2600, 1500, 24, 40, 70, KernelCostCat::kpted};

// Software-emulated SMU (the real-machine prototype of Section VI-A):
// the fault still traps, then runs an in-kernel SMU emulation and an
// mwait-based completion wait. Total ~2.0 us of software per fault,
// which reproduces Figure 17's 14% (Z-SSD) to 44% (Optane PMM) HWDP
// advantage.
const KernelPhase swSmuSubmit =
    {"sw_smu_submit", 1700, 850, 32, 28, 80, KernelCostCat::faultPath};
const KernelPhase swSmuWake =
    {"sw_smu_wake", 840, 180, 9, 7, 14, KernelCostCat::faultPath};
const KernelPhase swSmuComplete =
    {"sw_smu_complete", 2500, 1200, 45, 38, 100,
     KernelCostCat::faultPath};

} // namespace phases

KernelExec::KernelExec(mem::CacheHierarchy &caches,
                       std::vector<mem::BranchPredictor> &bps,
                       Tick cycle_period, sim::Rng rng)
    : caches(caches), bps(bps), period(cycle_period), rng(rng)
{
    if (cycle_period == 0)
        fatal("KernelExec: zero cycle period");
}

Tick
KernelExec::run(unsigned phys_core, const KernelPhase &phase)
{
    auto c = static_cast<unsigned>(phase.cat);
    instrByCat[c] += phase.instructions;
    cyclesByCat[c] += phase.cycles;
    if (pollute)
        applyPollution(phys_core, phase);
    return phase.cycles * period;
}

Tick
KernelExec::runBatch(unsigned phys_core, const KernelPhase &phase,
                     std::uint64_t n)
{
    Tick total = 0;
    auto c = static_cast<unsigned>(phase.cat);
    instrByCat[c] += phase.instructions * n;
    cyclesByCat[c] += phase.cycles * n;
    total = phase.cycles * n * period;
    if (pollute) {
        // Batched work reuses the same code lines; pollute once per
        // batch for instructions but scale data touches (each page has
        // its own struct page / PTE line), capped to keep batches
        // cheap to simulate.
        KernelPhase scaled = phase;
        std::uint64_t dc = static_cast<std::uint64_t>(phase.dcLines) * n;
        scaled.dcLines = static_cast<std::uint16_t>(std::min<std::uint64_t>(
            dc, 4096));
        std::uint64_t br = static_cast<std::uint64_t>(phase.branches) * n;
        scaled.branches = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(br, 8192));
        applyPollution(phys_core, scaled);
    }
    return total;
}

KernelExec::Footprint &
KernelExec::footprint(const KernelPhase &phase)
{
    auto [it, fresh] = footprints.try_emplace(phase.name);
    Footprint &fp = it->second;
    if (fresh) {
        // Stable per-phase bases: kernel text/data live in a high
        // region distinct from any user mapping. The FNV-ish hash
        // spreads phases; hashing the name once per phase (not once
        // per invocation) is a measurable win on its own.
        std::uint64_t h = 1469598103934665603ULL;
        for (const char *p = phase.name; *p; ++p)
            h = (h ^ static_cast<std::uint64_t>(*p)) * 1099511628211ULL;
        fp.textBase = 0xffff'ffff'8000'0000ULL + (h & 0x3f'ffc0);
        fp.dataBase = 0xffff'ea00'0000'0000ULL + ((h >> 20) & 0xff'ffc0);
    }
    return fp;
}

void
KernelExec::applyPollution(unsigned phys_core, const KernelPhase &phase)
{
    ++invocation;
    Footprint &fp = footprint(phase);
    if (batch) {
        applyPollutionBatch(phys_core, phase, fp);
        return;
    }

    // Reference path: per-line level descents, kept bit-for-bit as
    // the oracle the batched path is verified against.
    auto c = static_cast<unsigned>(phase.cat);
    std::uint64_t probes = 0;
    for (unsigned i = 0; i < phase.icLines; ++i) {
        auto r = caches.access(phys_core, fp.textBase + i * lineSize,
                               true, ExecMode::kernel);
        probes += 1u + r.l1Miss + r.l2Miss;
    }
    // The odd-index (per-invocation) line indices step by 2 mod 2048,
    // so one modulo seeds a wrapping index for the whole loop.
    std::uint64_t vary = (invocation * 37 + 1) % 2048;
    for (unsigned i = 0; i < phase.dcLines; ++i) {
        // Half the data lines are stable structures, half vary per
        // invocation (struct page, PTE, bio of *this* fault).
        std::uint64_t addr;
        if ((i & 1) == 0) {
            addr = fp.dataBase + i * lineSize;
        } else {
            addr = fp.dataBase + 0x100'0000 + vary * lineSize;
            vary += 2;
            if (vary >= 2048)
                vary -= 2048;
        }
        auto r = caches.access(phys_core, addr, false, ExecMode::kernel);
        probes += 1u + r.l1Miss + r.l2Miss;
    }
    probesByCat[c] += probes;
    branchesByCat[c] += phase.branches;
    for (unsigned i = 0; i < phase.branches; ++i) {
        std::uint64_t pc = fp.textBase + (i % 1024) * 16;
        // Kernel control flow is uncorrelated with the user patterns
        // sharing the PHT: from an aliased user entry's point of view
        // the interference is adversarial.
        bool taken = rng.chance(0.5);
        bps[phys_core].predictAndUpdate(pc, taken, ExecMode::kernel);
    }
}

void
KernelExec::applyPollutionBatch(unsigned phys_core,
                                const KernelPhase &phase, Footprint &fp)
{
    auto c = static_cast<unsigned>(phase.cat);
    std::size_t ic = phase.icLines;
    std::size_t dc = phase.dcLines;
    std::size_t br = phase.branches;

    // Grow the memoized vectors to this phase's counts (runBatch
    // scales dcLines/branches per call, so the first large batch
    // extends them; growth is amortised to nothing).
    if (fp.text.size() < ic) {
        for (std::size_t i = fp.text.size(); i < ic; ++i)
            fp.text.push_back(fp.textBase + i * lineSize);
    }
    if (fp.data.size() < dc) {
        for (std::size_t i = fp.data.size(); i < dc; ++i)
            fp.data.push_back((i & 1) == 0 ? fp.dataBase + i * lineSize
                                           : 0);
    }
    std::size_t pcs_needed = std::min<std::size_t>(br, 1024);
    if (fp.branchPcs.size() < pcs_needed) {
        for (std::size_t i = fp.branchPcs.size(); i < pcs_needed; ++i)
            fp.branchPcs.push_back(fp.textBase + i * 16);
    }

    // Draw the branch outcomes up front: the cache passes consume no
    // randomness, so hoisting the bulk draw leaves the generator
    // stream identical — and lets the predictor update overlap the
    // cache passes on the pool's side lane below.
    if (br > 0) {
        if (takenScratch.size() < br)
            takenScratch.resize(br);
        // The bulk draw produces the identical Bernoulli stream (and
        // generator state) as one chance(0.5) per branch.
        rng.fill(0.5, takenScratch.data(), br);
    }

    // Side-lane the predictor batch when it is heavy enough to pay
    // for the handoff. Predictor state is disjoint from every tag
    // array and the outcomes are pre-drawn, so concurrency with the
    // cache passes cannot change any simulated result (the update is
    // joined before this function returns).
    constexpr std::size_t asyncMinBranches = 512;
    auto bp_update = [&] {
        bps[phys_core].updateBatch(fp.branchPcs.data(),
                                   fp.branchPcs.size(),
                                   takenScratch.data(), br,
                                   ExecMode::kernel);
    };
    bool bp_async = pool && br >= asyncMinBranches;
    if (bp_async)
        pool->launchAsync(bp_update);

    std::uint64_t probes = 0;
    if (ic > 0) {
        auto r = caches.accessBatch(phys_core, fp.text.data(), ic, true,
                                    ExecMode::kernel);
        probes += r.probes(ic);
    }
    if (dc > 0) {
        // Rewrite the per-invocation (odd) slots in bulk, then stream
        // the run in its original interleaved order — order within
        // one array is what the batch preserves exactly.
        std::uint64_t vary = (invocation * 37 + 1) % 2048;
        std::uint64_t vary_base = fp.dataBase + 0x100'0000;
        for (std::size_t i = 1; i < dc; i += 2) {
            fp.data[i] = vary_base + vary * lineSize;
            vary += 2;
            if (vary >= 2048)
                vary -= 2048;
        }
        auto r = caches.accessBatch(phys_core, fp.data.data(), dc, false,
                                    ExecMode::kernel);
        probes += r.probes(dc);
    }
    probesByCat[c] += probes;
    branchesByCat[c] += br;
    if (bp_async)
        pool->joinAsync();
    else if (br > 0)
        bp_update();
}

std::uint64_t
KernelExec::instructions(KernelCostCat cat) const
{
    return instrByCat[static_cast<unsigned>(cat)];
}

Cycles
KernelExec::cycles(KernelCostCat cat) const
{
    return cyclesByCat[static_cast<unsigned>(cat)];
}

std::uint64_t
KernelExec::totalInstructions() const
{
    std::uint64_t t = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i)
        t += instrByCat[i];
    return t;
}

Cycles
KernelExec::totalCycles() const
{
    Cycles t = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i)
        t += cyclesByCat[i];
    return t;
}

std::uint64_t
KernelExec::pollutionProbes(KernelCostCat cat) const
{
    return probesByCat[static_cast<unsigned>(cat)];
}

std::uint64_t
KernelExec::totalPollutionProbes() const
{
    std::uint64_t t = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i)
        t += probesByCat[i];
    return t;
}

std::uint64_t
KernelExec::pollutionBranchUpdates(KernelCostCat cat) const
{
    return branchesByCat[static_cast<unsigned>(cat)];
}

std::uint64_t
KernelExec::totalPollutionBranchUpdates() const
{
    std::uint64_t t = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i)
        t += branchesByCat[i];
    return t;
}

void
KernelExec::resetAccounting()
{
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i) {
        instrByCat[i] = 0;
        cyclesByCat[i] = 0;
        probesByCat[i] = 0;
        branchesByCat[i] = 0;
    }
}

} // namespace hwdp::os

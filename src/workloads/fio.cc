#include "workloads/fio.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::workloads {

void
FioWorkload::serialize(sim::Serializer &s)
{
    s.section("fio");
    if (s.saving() && phase != Phase::loop)
        throw sim::SerializeError(
            "checkpoint: fio workload is mid-op; quiesce the machine "
            "first");
    s.check(unbounded, "fio unbounded flag");
    s.check(sequential, "fio sequential flag");
    s.io(remaining);
    s.io(curPage);
    s.io(seqIndex);
}

FioWorkload::FioWorkload(os::Vma *region, std::uint64_t n_ops,
                         std::uint64_t loop_instructions,
                         bool sequential)
    : region(region), remaining(n_ops), unbounded(n_ops == 0),
      sequential(sequential)
{
    if (!region)
        fatal("fio: no region to read");
    loopSpec.instructions = loop_instructions;
    loopSpec.memRefFrac = 0.2;
    loopSpec.branchFrac = 0.12;
    loopSpec.hotBase = 0x20'0000'0000ULL;
    loopSpec.hotBytes = 16 * 1024;   // fio's own state fits in L1
    loopSpec.coldBytes = 128 * 1024;
    loopSpec.coldFrac = 0.03;
    loopSpec.textBase = 0x4100'0000ULL;
    loopSpec.textBytes = 8 * 1024;
    loopSpec.branchBias = 0.95;
    loopSpec.staticBranches = 48;

    // The 4 KB copy out of the mapped page: the page's lines are cold
    // (they were just DMA'd), so the few sampled references mostly
    // miss to DRAM, costing the ~1-1.5 us a real memcpy of an
    // uncached 4 KB costs.
    copySpec.instructions = 900;
    copySpec.memRefFrac = 0.042; // ~38 refs over the 4 KB page
    copySpec.branchFrac = 0.04;
    copySpec.hotBytes = pageSize;
    copySpec.coldBytes = 0; // every ref goes to the just-read page
    copySpec.coldFrac = 0.0;
    copySpec.textBase = 0x4104'0000ULL;
    copySpec.textBytes = 4 * 1024;
    copySpec.branchBias = 0.97;
    copySpec.staticBranches = 8;
}

Op
FioWorkload::next(sim::Rng &rng)
{
    // Per 4 KB read the mmap engine runs its bookkeeping loop, touches
    // the mapped page (this is where demand paging happens) and then
    // memcpy()s the 4 KB into the user buffer — the copy streams cold,
    // just-DMA'd lines, and FIO's reported latency includes it.
    switch (phase) {
      case Phase::loop:
        if (!unbounded && remaining == 0)
            return Op::makeDone();
        phase = Phase::access;
        return Op::makeCompute(loopSpec);

      case Phase::access: {
        phase = Phase::copy;
        if (!unbounded)
            --remaining;
        std::uint64_t page = sequential
                                 ? (seqIndex++ % region->numPages())
                                 : rng.range(region->numPages());
        curPage = region->start + page * pageSize;
        VAddr addr = curPage + rng.range(64) * 64;
        return Op::makeMem(addr, false);
      }

      case Phase::copy: {
        phase = Phase::loop;
        ComputeSpec copy = copySpec;
        copy.hotBase = curPage;
        return Op::makeCompute(copy, true);
      }
    }
    return Op::makeDone();
}

} // namespace hwdp::workloads

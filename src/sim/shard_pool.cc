#include "sim/shard_pool.hh"

#include "sim/logging.hh"

namespace hwdp::sim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/**
 * Bounded spin, then yield: the regions are short (one batch run), so
 * a waiter usually spins only a few iterations; yielding afterwards
 * keeps an oversubscribed host (fewer cores than lanes) live.
 */
inline void
backoff(unsigned &spins)
{
    if (++spins < 64)
        cpuRelax();
    else
        std::this_thread::yield();
}

} // namespace

ShardPool::ShardPool(unsigned n_lanes) : nLanes(n_lanes)
{
    if (n_lanes < 2 || n_lanes > maxLanes)
        fatal("shard pool: lanes must be in [2, ", maxLanes, "], got ",
              n_lanes);
    workers.reserve(n_lanes - 1);
    for (unsigned i = 0; i + 1 < n_lanes; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ShardPool::~ShardPool()
{
    // A posted-but-unjoined async task would be dropped silently:
    // workers see stopFlag before tryClaimAsync and exit. Fail loudly
    // instead of losing the update.
    for (auto &sl : slots)
        if (sl.state.load(std::memory_order_acquire) != 0)
            fatal("shard pool: destroyed with an async task in flight "
                  "(missing joinAsync())");
    stopFlag.store(true, std::memory_order_release);
    gen.fetch_add(1, std::memory_order_release);
    gen.notify_all();
    for (auto &w : workers)
        w.join();
}

bool
ShardPool::tryClaimAsync(unsigned slot, bool worker)
{
    AsyncSlot &sl = slots[slot];
    unsigned expect = 1;
    if (!sl.state.compare_exchange_strong(expect, 2,
                                          std::memory_order_acquire))
        return false;
    sl.fn(sl.ctx, 0);
    if (worker)
        sl.nWorkerRuns.fetch_add(1, std::memory_order_relaxed);
    sl.state.store(3, std::memory_order_release);
    sl.state.notify_all();
    return true;
}

void
ShardPool::help()
{
    // Copy the region description once: regNext is the only region
    // field touched after this, and a stale claim (task id past the
    // region's count) executes nothing.
    TaskFn fn = regFn;
    void *ctx = regCtx;
    unsigned n = regTasks;
    for (;;) {
        unsigned t = regNext.fetch_add(1, std::memory_order_relaxed);
        if (t >= n)
            return;
        fn(ctx, t);
        regDone.fetch_add(1, std::memory_order_release);
    }
}

void
ShardPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t g = gen.load(std::memory_order_acquire);
        if (g == seen) {
            gen.wait(seen, std::memory_order_acquire);
            continue;
        }
        seen = g;
        if (stopFlag.load(std::memory_order_acquire))
            return;

        for (unsigned sl = 0; sl < maxAsyncSlots; ++sl)
            tryClaimAsync(sl, true);

        // Join the region published for this wake epoch, if any. The
        // epoch check inside the active window is what excludes
        // stragglers: run() retires the epoch (regGen = 0) and drains
        // `active` before it rewrites any region field, so a worker
        // arriving late sees a mismatched epoch and backs out without
        // touching the region. The active++ / regGen load here and the
        // regGen store / active load in run() form a store-load
        // (Dekker) pair: both sides must be seq_cst, or run() could
        // see active == 0 before this increment while we still see
        // the stale epoch and enter a region being rewritten.
        active.fetch_add(1, std::memory_order_seq_cst);
        if (regGen.load(std::memory_order_seq_cst) == g)
            help();
        active.fetch_sub(1, std::memory_order_release);
    }
}

void
ShardPool::run(unsigned n_tasks, TaskFn fn, void *ctx)
{
    if (n_tasks == 0)
        return;
    ++nRegions;
    nRegionTasks += n_tasks;

    // Retire any previous epoch, then wait out workers inside the
    // claim window before rewriting the region fields. seq_cst on the
    // store and the first load pairs with the seq_cst active++ /
    // regGen load in workerLoop(): without it, TSO lets this relaxed
    // store linger in the store buffer past the active load, so we
    // could observe active == 0 while a worker that already
    // incremented still reads the stale epoch and joins the region
    // we are about to rewrite.
    regGen.store(0, std::memory_order_seq_cst);
    unsigned spins = 0;
    while (active.load(std::memory_order_seq_cst) != 0)
        backoff(spins);

    regFn = fn;
    regCtx = ctx;
    regTasks = n_tasks;
    regNext.store(0, std::memory_order_relaxed);
    regDone.store(0, std::memory_order_relaxed);

    std::uint64_t g = gen.load(std::memory_order_relaxed) + 1;
    regGen.store(g, std::memory_order_release);
    gen.store(g, std::memory_order_release);
    gen.notify_all();

    // The caller is a lane too: with every worker asleep (or busy on
    // the async lane) the region still completes right here.
    help();

    spins = 0;
    while (regDone.load(std::memory_order_acquire) < n_tasks)
        backoff(spins);
}

void
ShardPool::launchAsyncSlot(unsigned slot, TaskFn fn, void *ctx)
{
    if (slot >= maxAsyncSlots)
        fatal("shard pool: async slot ", slot, " out of range");
    AsyncSlot &sl = slots[slot];
    if (sl.state.load(std::memory_order_relaxed) != 0)
        fatal("shard pool: async slot ", slot, " already in flight");
    ++nAsync;
    ++sl.nPosted;
    sl.fn = fn;
    sl.ctx = ctx;
    sl.state.store(1, std::memory_order_release);
    gen.fetch_add(1, std::memory_order_release);
    gen.notify_all();
}

void
ShardPool::joinAsyncSlot(unsigned slot)
{
    AsyncSlot &sl = slots[slot];
    unsigned st = sl.state.load(std::memory_order_acquire);
    if (st == 0)
        return;
    // Unclaimed: execute it here so completion never waits on a
    // worker being scheduled.
    unsigned expect = 1;
    if (sl.state.compare_exchange_strong(expect, 2,
                                         std::memory_order_acquire)) {
        sl.fn(sl.ctx, 0);
        sl.state.store(0, std::memory_order_relaxed);
        return;
    }
    unsigned spins = 0;
    while (sl.state.load(std::memory_order_acquire) != 3)
        backoff(spins);
    sl.state.store(0, std::memory_order_relaxed);
}

} // namespace hwdp::sim

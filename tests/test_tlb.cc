/**
 * @file
 * Tests for the two-level TLB.
 */

#include <gtest/gtest.h>

#include "cpu/tlb.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::cpu;

TEST(Tlb, MissOnEmpty)
{
    Tlb tlb;
    auto r = tlb.lookup(0x1000);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, InsertThenL1Hit)
{
    Tlb tlb;
    tlb.insert(0x1000, 55);
    auto r = tlb.lookup(0x1234); // same page
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.pfn, 55u);
}

TEST(Tlb, L2BacksUpL1Evictions)
{
    Tlb tlb(4, 64, 4); // tiny L1
    for (VAddr v = 0; v < 16; ++v)
        tlb.insert(v << pageShift, v + 100);
    // Entry 0 fell out of the 4-entry L1 but must hit in the L2 and
    // be promoted.
    auto r = tlb.lookup(0);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.pfn, 100u);
    auto r2 = tlb.lookup(0);
    EXPECT_TRUE(r2.l1Hit);
}

TEST(Tlb, InvalidateRemovesBothLevels)
{
    Tlb tlb;
    tlb.insert(0x5000, 9);
    tlb.invalidate(0x5000);
    EXPECT_FALSE(tlb.lookup(0x5000).hit);
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb tlb;
    for (VAddr v = 0; v < 32; ++v)
        tlb.insert(v << pageShift, v);
    tlb.flush();
    for (VAddr v = 0; v < 32; ++v)
        EXPECT_FALSE(tlb.lookup(v << pageShift).hit);
}

TEST(Tlb, L1LruKeepsRecentlyUsed)
{
    Tlb tlb(2, 64, 4);
    tlb.insert(0x1000, 1);
    tlb.insert(0x2000, 2);
    tlb.lookup(0x1000);     // make 0x1000 MRU
    tlb.insert(0x3000, 3);  // evicts 0x2000 from L1
    EXPECT_TRUE(tlb.lookup(0x1000).l1Hit);
    EXPECT_FALSE(tlb.lookup(0x2000).l1Hit); // L2 hit at best
}

TEST(Tlb, UpdateExistingTranslation)
{
    Tlb tlb;
    tlb.insert(0x1000, 1);
    tlb.insert(0x1000, 2);
    EXPECT_EQ(tlb.lookup(0x1000).pfn, 2u);
}

TEST(Tlb, StatsCountMisses)
{
    Tlb tlb;
    tlb.lookup(0x1000);
    tlb.insert(0x1000, 1);
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.l1Misses(), 1u);
}

TEST(Tlb, BadGeometryRejected)
{
    EXPECT_THROW(Tlb(0, 64, 4), FatalError);
    EXPECT_THROW(Tlb(4, 0, 4), FatalError);
    EXPECT_THROW(Tlb(4, 63, 4), FatalError); // not divisible by assoc
}

TEST(Tlb, CapacityBoundProperty)
{
    Tlb tlb(8, 32, 4);
    sim::Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        tlb.insert(rng.range(1 << 20) << pageShift, i);
    // No crash and lookups stay sane.
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += tlb.lookup(rng.range(1 << 20) << pageShift).hit;
    EXPECT_LT(hits, 1000);
}

TEST(Tlb, LatchServesRepeatedLookups)
{
    Tlb tlb;
    tlb.insert(0x1000, 7);
    EXPECT_TRUE(tlb.lookup(0x1000).l1Hit); // primes the latch
    std::uint64_t base = tlb.latchHits();
    for (int i = 0; i < 10; ++i) {
        auto r = tlb.lookup(0x1000 + i * 8); // same page
        EXPECT_TRUE(r.l1Hit);
        EXPECT_EQ(r.pfn, 7u);
    }
    EXPECT_EQ(tlb.latchHits(), base + 10);
}

TEST(Tlb, LatchInvalidationIsExact)
{
    // Invalidate the latched translation, then look it up again: the
    // latch must not serve the stale PFN.
    Tlb tlb;
    tlb.insert(0x1000, 7);
    ASSERT_TRUE(tlb.lookup(0x1000).hit); // latched
    tlb.invalidate(0x1000);
    EXPECT_FALSE(tlb.lookup(0x1000).hit);

    // Same for flush.
    tlb.insert(0x2000, 8);
    ASSERT_TRUE(tlb.lookup(0x2000).hit);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x2000).hit);
}

TEST(Tlb, LatchFollowsRemap)
{
    // A remap of the latched page must be visible on the next lookup
    // even though the latch still points at the same L1 slot.
    Tlb tlb;
    tlb.insert(0x1000, 7);
    ASSERT_EQ(tlb.lookup(0x1000).pfn, 7u);
    tlb.insert(0x1000, 9);
    EXPECT_EQ(tlb.lookup(0x1000).pfn, 9u);
}

TEST(Tlb, InsertIsIdempotentForL2Lru)
{
    // Re-inserting a resident translation with its existing PFN (a
    // re-walk after e.g. an A-bit update) is a no-op: unlike a real
    // *use* (lookup), it must not refresh the entry's L2 recency.
    // Single-entry L1 so L1 refills can't mask the L2 state; 4-entry
    // fully-associative L2.
    Tlb tlb(1, 4, 4);
    for (VAddr v = 1; v <= 4; ++v)
        tlb.insert(v << pageShift, v);
    // A real use: VPN 1 becomes the newest in L2.
    ASSERT_TRUE(tlb.lookup(1ull << pageShift).hit);
    // No-ops: VPN 2 stays the oldest despite three re-inserts.
    for (int i = 0; i < 3; ++i)
        tlb.insert(2ull << pageShift, 2);
    tlb.insert(5ull << pageShift, 5); // evicts VPN 2, not VPN 1
    EXPECT_TRUE(tlb.lookup(1ull << pageShift).hit);
    EXPECT_FALSE(tlb.lookup(2ull << pageShift).hit);
    EXPECT_TRUE(tlb.lookup(5ull << pageShift).hit);
}

TEST(Tlb, InterleavedInsertInvalidateFlush)
{
    // Regression sweep over operation interleavings: after any
    // sequence, a lookup must agree with a shadow map of what was
    // inserted minus what was invalidated/flushed.
    Tlb tlb(4, 16, 4, 2);
    sim::Rng rng(11);
    std::vector<std::pair<std::uint64_t, Pfn>> shadow; // newest wins
    auto shadowLookup = [&](std::uint64_t vpn) -> const Pfn * {
        for (auto it = shadow.rbegin(); it != shadow.rend(); ++it)
            if (it->first == vpn)
                return &it->second;
        return nullptr;
    };
    for (int step = 0; step < 5000; ++step) {
        std::uint64_t vpn = rng.range(64);
        switch (rng.range(8)) {
          case 0:
            tlb.invalidate(vpn << pageShift);
            std::erase_if(shadow,
                          [&](auto &p) { return p.first == vpn; });
            break;
          case 1:
            if (rng.chance(0.02)) {
                tlb.flush();
                shadow.clear();
                break;
            }
            [[fallthrough]];
          default:
            tlb.insert(vpn << pageShift, static_cast<Pfn>(step));
            std::erase_if(shadow,
                          [&](auto &p) { return p.first == vpn; });
            shadow.emplace_back(vpn, static_cast<Pfn>(step));
            break;
        }
        // The TLB may evict (capacity), but it must never hit with a
        // wrong PFN and never hit something invalidated or flushed.
        auto r = tlb.lookup(vpn << pageShift);
        const Pfn *want = shadowLookup(vpn);
        if (!want)
            EXPECT_FALSE(r.hit) << "stale hit at step " << step;
        else if (r.hit)
            EXPECT_EQ(r.pfn, *want) << "wrong PFN at step " << step;
    }
}

TEST(Tlb, FlatL1EvictsLeastRecentlyUsed)
{
    // 4-entry 2-way L1: VPNs 0 and 2 land in set 0, VPNs 1 and 3 in
    // set 1 (set index = vpn & 1). Touch one way, insert a third VPN
    // into the same set, and the untouched way must be the victim.
    Tlb tlb(4, 64, 4, 2);
    tlb.insert(0ull << pageShift, 10); // set 0
    tlb.insert(2ull << pageShift, 12); // set 0
    tlb.lookup(0ull << pageShift);     // VPN 0 is now MRU
    tlb.insert(4ull << pageShift, 14); // set 0: evicts VPN 2
    EXPECT_TRUE(tlb.lookup(0ull << pageShift).l1Hit);
    EXPECT_TRUE(tlb.lookup(4ull << pageShift).l1Hit);
    EXPECT_FALSE(tlb.lookup(2ull << pageShift).l1Hit); // L2 at best
}

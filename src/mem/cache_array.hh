/**
 * @file
 * Set-associative cache tag array with true-LRU replacement.
 *
 * Only tags are modelled (no data), which is all the paper's
 * microarchitectural-pollution analysis needs: the OS fault handler
 * evicts user-application lines, and the resulting extra user misses
 * show up as reduced user-level IPC (Figures 4 and 14).
 *
 * Layout: each way is a single 64-bit word packing the tag (upper
 * bits) with its LRU stamp (lower bits), so a set scan — the hottest
 * loop in the whole simulator; every compute-burst data reference and
 * kernel-pollution touch lands here — reads exactly one densely
 * packed stream of ways and a hit updates recency in the word it
 * already loaded. Splitting tags and stamps into parallel arrays
 * doubles the host cache lines touched per scan, which dominates the
 * simulator's wall clock on the LLC (whose metadata exceeds the host
 * L2). The stamp field is narrow, so stamps are renormalised to their
 * per-set LRU rank when the clock saturates; order — the only thing
 * LRU consults — is preserved exactly.
 *
 * Victim selection (the way with the smallest stamp; invalid ways
 * carry stamp 0 and therefore win) rides along with the hit scan so a
 * miss installs its line without a second pass over the set.
 */

#ifndef HWDP_MEM_CACHE_ARRAY_HH
#define HWDP_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#if defined(__AVX2__)
// GCC's AVX-512 intrinsics pass _mm512_undefined_epi32() as the
// masked-builtin pass-through argument, which -Wmaybe-uninitialized
// flags once the intrinsics inline into our scans (GCC PR105593).
// Suppress at the header, where the warnings are attributed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::mem {

class CacheArray
{
  public:
    /**
     * @param name       For diagnostics.
     * @param size_bytes Total capacity; must be assoc * n_sets * line.
     * @param assoc      Ways per set (at most 64).
     * @param line_bytes Line size (default 64 B).
     */
    CacheArray(std::string name, std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes = 64);

    /**
     * Look up @p addr, allocating on miss.
     * @return true on hit.
     */
    bool
    access(std::uint64_t addr)
    {
        if (useClock == stampMask) [[unlikely]]
            renormalize();
        bool hit = accessOne(addr, ++useClock);
        hits += hit;
        misses += !hit;
        return hit;
    }

    /**
     * Look up a run of @p n line addresses, allocating on miss, with
     * identical post-state and counters to n sequential access()
     * calls: lines are processed strictly in order through the same
     * scan code (stamp i is position-determined, each line's scan
     * sees every earlier line's installation, so set collisions and
     * aliasing within the run need no special handling), and
     * renormalisation fires at exactly the same access indices. The
     * wins are on the host: one call replaces n, the hit/miss
     * counters fold up once, misses compact directly into the next
     * level's input run, and on wide arrays (whose metadata exceeds
     * the host cache) every upcoming set is prefetched a window
     * ahead of its scan, overlapping the latency the per-line path
     * serialises.
     *
     * @param miss_out   Receives the missing addresses, in run order,
     *                   compacted; must hold @p n words. This is the
     *                   next level's input in a level-major descent.
     * @param hit_bitmap Optional (tests): bit i set iff line i hit;
     *                   at least (n + 63) / 64 words.
     * @return the number of hits (n minus the miss_out count).
     */
    std::size_t accessBatch(const std::uint64_t *addrs, std::size_t n,
                            std::uint64_t *miss_out,
                            std::uint64_t *hit_bitmap = nullptr);

    /** Per-shard outcome of one accessBatchShard() pass. */
    struct ShardResult
    {
        std::uint64_t hits = 0;
        std::uint64_t fills = 0; ///< Misses that filled an invalid way.
    };

    /**
     * One shard's pass of a set-sharded batch: process exactly the
     * lines of the run whose set index satisfies
     * set % n_shards == shard, in run order, and record each one's
     * outcome in hit_flags[line index]. The sharded protocol —
     * accessBatchShard() once per shard in [0, n_shards) over the
     * same run, then finishShardedBatch() once — leaves simulated
     * state, counters and per-line outcomes bit-identical to one
     * accessBatch() call, for any n_shards: an access's outcome and
     * its victim choice depend only on its set's prior contents, sets
     * are partitioned across shards, the LRU stamp of line j is
     * position-determined (clock base + offset within the
     * renormalisation segment, independent of other lines' hit/miss
     * outcomes), and segment boundaries depend only on the shared
     * clock and run length — so every shard derives the identical
     * segment plan from the unmodified clock and renormalises its own
     * sets at the identical access indices.
     *
     * Thread-safe against concurrent calls on the *same* run with the
     * same n_shards and distinct shard ids: each call writes only its
     * own sets' metadata and its own lines' hit_flags bytes, and
     * reads only shared scalars that finishShardedBatch() alone
     * updates afterwards.
     */
    ShardResult accessBatchShard(const std::uint64_t *addrs, std::size_t n,
                                 std::uint8_t *hit_flags, unsigned shard,
                                 unsigned n_shards);

    /**
     * Complete a sharded batch: advance the LRU clock across the
     * run's renormalisation segments exactly as accessBatch() would
     * have, and fold the shards' summed hit/fill totals into the
     * hit/miss/occupancy counters. Call exactly once, after every
     * shard's accessBatchShard() returned.
     */
    void finishShardedBatch(std::size_t n, std::uint64_t total_hits,
                            std::uint64_t total_fills);

    /** Look up without allocating or updating recency. */
    bool
    probe(std::uint64_t addr) const
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        std::uint64_t want = tagWord(addr);
        for (unsigned w = 0; w < ways; ++w) {
            if ((meta[base + w] & ~stampMask) == want)
                return true;
        }
        return false;
    }

    /**
     * Hint the host to start fetching the set @p addr maps to. The
     * hierarchy issues this for the next level while it still scans
     * the current one, overlapping the model's serial level walk with
     * the host's memory latency. No simulated effect.
     */
    void
    prefetch(std::uint64_t addr) const
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        __builtin_prefetch(&meta[base]);
        if (ways > 8)
            __builtin_prefetch(&meta[base + 8]);
        if (ways > 16)
            __builtin_prefetch(&meta[base + 16]);
    }

    /** Invalidate a single line if present; returns true if it was. */
    bool invalidate(std::uint64_t addr);

    /** Drop all contents (e.g. on simulated power events / tests). */
    void flush();

    /** Number of valid lines currently resident (O(1) live counter). */
    std::uint64_t occupancy() const { return nValid; }

    std::uint64_t sizeBytes() const { return bytes; }
    unsigned associativity() const { return ways; }
    unsigned numSets() const { return sets; }
    unsigned lineBytes() const { return line; }
    const std::string &name() const { return label; }

    std::uint64_t hitCount() const { return hits; }
    std::uint64_t missCount() const { return misses; }

    /**
     * Raw tag+stamp words (sets * ways, row-major by set). The
     * differential tests compare this for full post-state equality
     * between the batched and per-line paths.
     */
    const std::vector<std::uint64_t> &rawMeta() const { return meta; }

    /**
     * Checkpoint the packed tag+stamp words, the LRU clock and the
     * hit/miss/occupancy counters; the geometry is verified.
     */
    void serialize(sim::Serializer &s);

  private:
    /** Outcome of one set scan: where to install, and what happened. */
    struct SetScan
    {
        std::size_t slot; ///< meta[] index the line lands in.
        bool hit;
        bool fill; ///< Miss that fills an invalid way.
    };

    /**
     * scanSet with the way count a compile-time constant: the compiler
     * fully unrolls both the branchless hit scan and the victim
     * argmin, with no loop-control or runtime-trip-count overhead.
     * The 8-way instantiation serves every L1 and L2 probe — the
     * hottest loop in the simulator by an order of magnitude — where
     * the unrolled form measures ~25% faster than the runtime loop.
     * Semantically identical to the generic narrow path below.
     */
    template <unsigned W>
    [[gnu::always_inline]] inline SetScan
    scanSetFixed(std::size_t base, std::uint64_t want) const
    {
        static_assert(W <= 8, "fixed scan covers narrow sets only");
        const std::uint64_t tag_mask = ~stampMask;
        const std::uint64_t *row = &meta[base];

#if defined(__AVX512F__)
        // One 512-bit register holds the whole 8-way set: a single
        // masked compare finds the hit way, and the victim argmin
        // min-reduces the (stamp << 6 | way) keys in u64 lanes — keys
        // are unique (the way bits break stamp ties exactly like the
        // scalar strict-min), so the reduction picks the identical
        // way, with no width constraint on the stamp field.
        if constexpr (W == 8) {
            __m512i r = _mm512_loadu_si512(row);
            __m512i vmask =
                _mm512_set1_epi64(static_cast<long long>(tag_mask));
            __m512i vwant =
                _mm512_set1_epi64(static_cast<long long>(want));
            __mmask8 m = _mm512_cmpeq_epi64_mask(
                _mm512_and_epi64(r, vmask), vwant);
            if (m)
                return {base + static_cast<unsigned>(__builtin_ctz(m)),
                        true, false};

            __m512i vstamp =
                _mm512_set1_epi64(static_cast<long long>(stampMask));
            __m512i keys = _mm512_or_epi64(
                _mm512_slli_epi64(_mm512_and_epi64(r, vstamp), 6),
                _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
            std::uint64_t best = _mm512_reduce_min_epu64(keys);
            return {base + (best & 63), false, best >> 6 == 0};
        }
#elif defined(__AVX2__)
        // Vector scan: eight tag compares in two 256-bit ops with no
        // loop-carried chain, where the scalar scan serialises eight
        // conditional moves. The victim argmin packs each way's
        // (stamp << 6 | way) key into a 32-bit lane and min-reduces;
        // keys are unique (the way bits break stamp ties exactly like
        // the scalar strict-min), so the reduction picks the identical
        // way. Keys need stampMask < 2^26 to fit a lane — true for
        // any 8-way array up to 512 MB; larger falls to the scalar
        // path below (the branch is loop-invariant and predicted).
        if constexpr (W == 8) {
            if (!(stampMask >> 26)) [[likely]] {
                __m256i r0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(row));
                __m256i r1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(row + 4));
                __m256i vmask = _mm256_set1_epi64x(
                    static_cast<long long>(tag_mask));
                __m256i vwant =
                    _mm256_set1_epi64x(static_cast<long long>(want));
                __m256i e0 = _mm256_cmpeq_epi64(
                    _mm256_and_si256(r0, vmask), vwant);
                __m256i e1 = _mm256_cmpeq_epi64(
                    _mm256_and_si256(r1, vmask), vwant);
                unsigned m =
                    static_cast<unsigned>(
                        _mm256_movemask_pd(_mm256_castsi256_pd(e0))) |
                    static_cast<unsigned>(
                        _mm256_movemask_pd(_mm256_castsi256_pd(e1)))
                        << 4;
                if (m)
                    return {base + static_cast<unsigned>(
                                       __builtin_ctz(m)),
                            true, false};

                // Miss: dword-interleave the two stamp vectors (even
                // lanes = ways 0..3, odd lanes = ways 4..7), build the
                // keys, min-reduce.
                __m256i vstamp = _mm256_set1_epi64x(
                    static_cast<long long>(stampMask));
                __m256i s0 = _mm256_and_si256(r0, vstamp);
                __m256i s1 = _mm256_and_si256(r1, vstamp);
                __m256i inter = _mm256_blend_epi32(
                    s0, _mm256_slli_epi64(s1, 32), 0xAA);
                __m256i keys = _mm256_or_si256(
                    _mm256_slli_epi32(inter, 6),
                    _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
                __m128i k = _mm_min_epu32(
                    _mm256_castsi256_si128(keys),
                    _mm256_extracti128_si256(keys, 1));
                k = _mm_min_epu32(k, _mm_shuffle_epi32(k, 0x4e));
                k = _mm_min_epu32(k, _mm_shuffle_epi32(k, 0xb1));
                std::uint32_t best = static_cast<std::uint32_t>(
                    _mm_cvtsi128_si32(k));
                return {base + (best & 63), false, best >> 6 == 0};
            }
        }
#endif

        std::uint64_t found = 0;
        unsigned hit_way = 0;
        for (unsigned w = 0; w < W; ++w) {
            bool eq = (row[w] & tag_mask) == want;
            found |= eq;
            hit_way = eq ? w : hit_way;
        }
        if (found)
            return {base + hit_way, true, false};

        std::uint64_t best = ~std::uint64_t(0);
        std::uint64_t alt = ~std::uint64_t(0);
        unsigned w = 0;
        for (; w + 1 < W; w += 2) {
            std::uint64_t a = (row[w] & stampMask) << 6 | w;
            std::uint64_t b = (row[w + 1] & stampMask) << 6 | (w + 1);
            best = best < a ? best : a;
            alt = alt < b ? alt : b;
        }
        if (w < W) {
            std::uint64_t a = (row[w] & stampMask) << 6 | w;
            best = best < a ? best : a;
        }
        best = best < alt ? best : alt;
        return {base + (best & 63), false, best >> 6 == 0};
    }

    /**
     * Wide-set scan with the way count a compile-time constant — the
     * LLC counterpart of scanSetFixed. With AVX-512 the hit scan runs
     * at exact trip count (the tail lanes via a masked load, never
     * reading past the set) and the victim argmin min-reduces the
     * (stamp << 6 | way) keys in u64 lanes instead of the generic
     * scan's serial cmov chain over a runtime trip count. Keys are
     * unique (the way bits break stamp ties exactly like the scalar
     * strict-min), so the reduction picks the identical way.
     * Semantically identical to the generic scan; hosts without
     * AVX-512 just take the generic scan.
     */
    template <unsigned W>
    [[gnu::always_inline]] inline SetScan
    scanSetWide(std::size_t base, std::uint64_t want) const
    {
        static_assert(W > 8 && W <= 64, "wide scan covers 9..64 ways");
#if defined(__AVX512F__)
        const std::uint64_t tag_mask = ~stampMask;
        const std::uint64_t *row = &meta[base];
        __builtin_prefetch(row + 8);
        if constexpr (W > 16)
            __builtin_prefetch(row + 16);

        const __m512i vmask =
            _mm512_set1_epi64(static_cast<long long>(tag_mask));
        const __m512i vwant =
            _mm512_set1_epi64(static_cast<long long>(want));
        constexpr unsigned full = W / 8 * 8;
        constexpr __mmask8 tail =
            static_cast<__mmask8>((1u << W % 8) - 1);
        for (unsigned w = 0; w < full; w += 8) {
            __m512i r = _mm512_loadu_si512(row + w);
            __mmask8 m = _mm512_cmpeq_epi64_mask(
                _mm512_and_epi64(r, vmask), vwant);
            if (m)
                return {base + w +
                            static_cast<unsigned>(__builtin_ctz(m)),
                        true, false};
        }
        if constexpr (W % 8) {
            __m512i r = _mm512_maskz_loadu_epi64(tail, row + full);
            __mmask8 m = tail & _mm512_cmpeq_epi64_mask(
                                    _mm512_and_epi64(r, vmask), vwant);
            if (m)
                return {base + full +
                            static_cast<unsigned>(__builtin_ctz(m)),
                        true, false};
        }

        // Miss: re-walk the set (now host-resident) building keys and
        // min-reducing; tail lanes are padded with ~0 so they lose.
        const __m512i vstamp =
            _mm512_set1_epi64(static_cast<long long>(stampMask));
        const __m512i lane = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
        __m512i best512 = _mm512_set1_epi64(-1);
        for (unsigned w = 0; w < full; w += 8) {
            __m512i r = _mm512_loadu_si512(row + w);
            __m512i keys = _mm512_or_epi64(
                _mm512_slli_epi64(_mm512_and_epi64(r, vstamp), 6),
                _mm512_add_epi64(lane, _mm512_set1_epi64(w)));
            best512 = _mm512_min_epu64(best512, keys);
        }
        if constexpr (W % 8) {
            __m512i r = _mm512_maskz_loadu_epi64(tail, row + full);
            __m512i keys = _mm512_or_epi64(
                _mm512_slli_epi64(_mm512_and_epi64(r, vstamp), 6),
                _mm512_add_epi64(lane, _mm512_set1_epi64(full)));
            keys = _mm512_mask_blend_epi64(tail,
                                           _mm512_set1_epi64(-1), keys);
            best512 = _mm512_min_epu64(best512, keys);
        }
        std::uint64_t best = _mm512_reduce_min_epu64(best512);
        return {base + (best & 63), false, best >> 6 == 0};
#else
        return scanSet(base, want);
#endif
    }

    /**
     * Scan the set at @p base for @p want: hit way on a hit, LRU
     * victim on a miss. Read-only — the caller installs want | stamp
     * into meta[slot]. Both access() and accessBatch() funnel every
     * lookup through this one scan, which is what keeps the two paths
     * bit-identical by construction.
     */
    SetScan
    scanSet(std::size_t base, std::uint64_t want) const
    {
        // Hit scan first, with no victim bookkeeping: a min-reduction
        // carried through the loop serialises it on the host, and the
        // common case (a hit) never needs one.
        const std::uint64_t tag_mask = ~stampMask;
        if (ways <= 8) {
            // Narrow set (one host line): scan branchless. An
            // early-exit loop mispredicts once per access because the
            // hit way is unpredictable; accumulating the hit way with
            // conditional moves costs a few ALU ops and no flush.
            std::uint64_t found = 0;
            unsigned hit_way = 0;
            for (unsigned w = 0; w < ways; ++w) {
                bool eq = (meta[base + w] & tag_mask) == want;
                found |= eq;
                hit_way = eq ? w : hit_way;
            }
            if (found)
                return {base + hit_way, true, false};
        } else {
            // Wide set (several host lines, large array): the scan is
            // memory-latency-bound, so start the trailing lines'
            // fetches before walking the set in order.
            __builtin_prefetch(&meta[base + 8]);
            if (ways > 16)
                __builtin_prefetch(&meta[base + 16]);
            unsigned w = 0;
#if defined(__AVX512F__)
            // Eight tag compares per step; the first matching group
            // yields the lowest matching way via the mask's trailing
            // zeros, same as the scalar early-exit walk.
            __m512i vmask512 =
                _mm512_set1_epi64(static_cast<long long>(tag_mask));
            __m512i vwant512 =
                _mm512_set1_epi64(static_cast<long long>(want));
            for (; w + 8 <= ways; w += 8) {
                __m512i r = _mm512_loadu_si512(&meta[base + w]);
                __mmask8 m = _mm512_cmpeq_epi64_mask(
                    _mm512_and_epi64(r, vmask512), vwant512);
                if (m)
                    return {base + w +
                                static_cast<unsigned>(
                                    __builtin_ctz(m)),
                            true, false};
            }
#endif
#if defined(__AVX2__)
            // Four tag compares per step; the first matching group
            // yields the lowest matching way via the mask's trailing
            // zeros, same as the scalar early-exit walk.
            __m256i vmask =
                _mm256_set1_epi64x(static_cast<long long>(tag_mask));
            __m256i vwant =
                _mm256_set1_epi64x(static_cast<long long>(want));
            for (; w + 4 <= ways; w += 4) {
                __m256i r = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(&meta[base + w]));
                __m256i e = _mm256_cmpeq_epi64(
                    _mm256_and_si256(r, vmask), vwant);
                int m = _mm256_movemask_pd(_mm256_castsi256_pd(e));
                if (m)
                    return {base + w +
                                static_cast<unsigned>(__builtin_ctz(
                                    static_cast<unsigned>(m))),
                            true, false};
            }
#endif
            for (; w < ways; ++w) {
                if ((meta[base + w] & tag_mask) == want)
                    return {base + w, true, false};
            }
        }

        // Miss: second pass (over the set just loaded into the host
        // cache) for the smallest stamp; invalid ways carry 0 and win.
        // Stamp and way index pack into one key (ways <= 64), turning
        // the argmin into plain min chains; two accumulators keep the
        // host's cmov latency off the critical path. Stamp ties can
        // only be invalid ways, which the way-index bits break toward
        // the first — matching the strict-min scan this replaces.
        std::uint64_t best = ~std::uint64_t(0);
        std::uint64_t alt = ~std::uint64_t(0);
        unsigned w = 0;
        for (; w + 1 < ways; w += 2) {
            std::uint64_t a = (meta[base + w] & stampMask) << 6 | w;
            std::uint64_t b =
                (meta[base + w + 1] & stampMask) << 6 | (w + 1);
            best = best < a ? best : a;
            alt = alt < b ? alt : b;
        }
        if (w < ways) {
            std::uint64_t a = (meta[base + w] & stampMask) << 6 | w;
            best = best < a ? best : a;
        }
        best = best < alt ? best : alt;
        return {base + (best & 63), false, best >> 6 == 0};
    }

    /**
     * One lookup at a pre-assigned LRU stamp. No renormalisation
     * check, no clock advance, no hit/miss counters — the wrappers
     * own those so batch and per-line paths stay bit-identical by
     * construction.
     */
    [[gnu::always_inline]] inline bool
    accessOne(std::uint64_t addr, std::uint64_t clock)
    {
        return accessOneInto(addr, clock, nValid);
    }

    /**
     * accessOne with the fill count routed to @p fills instead of the
     * shared occupancy counter, so a shard pass can accumulate its
     * fills privately and fold them in at finishShardedBatch().
     */
    [[gnu::always_inline]] inline bool
    accessOneInto(std::uint64_t addr, std::uint64_t clock,
                  std::uint64_t &fills)
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        std::uint64_t want = tagWord(addr);
        // The 8- and 20-way arms cover every array the default
        // CacheParams builds (L1/L2 and the LLC respectively); other
        // geometries take the generic runtime-width scan.
        // Dispatch here, not inside scanSet: the fixed-width scan must
        // inline into the access loops (its whole point is killing
        // per-probe call overhead), while the generic scan stays a
        // call — it is cold by comparison and big.
        SetScan s = ways == 8    ? scanSetFixed<8>(base, want)
                    : ways == 20 ? scanSetWide<20>(base, want)
                                 : scanSet(base, want);
        meta[s.slot] = want | clock;
        fills += s.fill;
        return s.hit;
    }
    std::string label;
    std::uint64_t bytes;
    unsigned ways;
    unsigned line;
    unsigned sets;
    unsigned lineShiftBits;
    unsigned setBits;

    /**
     * Stamp field width = line-offset bits + set-index bits: exactly
     * the address bits the tag does not need, so tag | stamp always
     * fits one word with the tag exact. Stamps of valid ways are in
     * [1, stampMask); 0 is reserved for invalid ways (and makes the
     * all-zero word the invalid encoding), stampMask triggers
     * renormalisation before it is ever stored.
     */
    std::uint64_t stampMask;

    std::vector<std::uint64_t> meta; // sets * ways, row-major by set
    std::uint64_t useClock = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t nValid = 0;

    /**
     * Tag field for @p addr, positioned above the stamp. Stored with
     * +1 bias so no valid way ever encodes as zero: the tag field of
     * a real line is therefore never 0 and an invalid way (word 0)
     * can never false-hit address 0. The bias cannot overflow for any
     * modelled address (it would need the top line of the 64-bit
     * space, which nothing maps).
     */
    std::uint64_t
    tagWord(std::uint64_t addr) const
    {
        return ((addr >> (lineShiftBits + setBits)) + 1)
               << (lineShiftBits + setBits);
    }

    /**
     * Rewrite every stamp as its per-set LRU rank (1..ways), resetting
     * the clock. Order-preserving, so replacement behaviour is
     * bit-identical; runs once every ~2^stampBits accesses.
     */
    void renormalize();

    /** renormalize() for one set; shared by both renormalisers. */
    void renormalizeSet(unsigned s);

    /**
     * renormalize() restricted to the sets of one shard, without
     * touching the shared clock (finishShardedBatch() advances it).
     * Renormalisation is per-set independent, so per-shard application
     * at the same access index is exact.
     */
    void renormalizeShard(unsigned shard, unsigned n_shards);
};

} // namespace hwdp::mem

#endif // HWDP_MEM_CACHE_ARRAY_HH

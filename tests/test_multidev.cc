/**
 * @file
 * Tests for multi-device routing (the PTE's 3-bit device id) and the
 * per-core free page queue extension.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig(unsigned devices)
{
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::hwdp;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 4096;
    cfg.nDevices = devices;
    cfg.smu.freeQueueCapacity = 512;
    return cfg;
}

struct TouchPages : workloads::Workload
{
    os::Vma *vma;
    std::uint64_t n;
    std::uint64_t i = 0;
    TouchPages(os::Vma *v, std::uint64_t n) : vma(v), n(n) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= n)
            return workloads::Op::makeDone();
        return workloads::Op::makeMem(vma->start + (i++) * pageSize,
                                      false, true);
    }
    const char *label() const override { return "touch"; }
};

} // namespace

TEST(MultiDevice, PtesCarryTheDeviceId)
{
    system::System sys(tinyConfig(2));
    auto a = sys.mapDataset("a", 64, nullptr, 0);
    auto b = sys.mapDataset("b", 64, a.as, 1);
    EXPECT_EQ(os::pte::deviceIdOf(
                  a.as->pageTable().readPte(a.vma->start)),
              0u);
    EXPECT_EQ(os::pte::deviceIdOf(
                  b.as->pageTable().readPte(b.vma->start)),
              1u);
}

TEST(MultiDevice, SmuRoutesMissesToTheRightDevice)
{
    system::System sys(tinyConfig(2));
    auto a = sys.mapDataset("a", 64, nullptr, 0);
    auto b = sys.mapDataset("b", 64, a.as, 1);

    auto *wa = sys.makeWorkload<TouchPages>(a.vma, 16);
    auto *wb = sys.makeWorkload<TouchPages>(b.vma, 24);
    sys.addThread(*wa, 0, *a.as);
    sys.addThread(*wb, 1, *a.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));

    EXPECT_EQ(sys.ssdAt(0).readsCompleted(), 16u);
    EXPECT_EQ(sys.ssdAt(1).readsCompleted(), 24u);
    EXPECT_EQ(sys.smu()->handled(), 40u);
}

namespace {

/** Mean read latency for a reader while a writer hammers dev 0. */
double
readLatencyUnderWrites(unsigned devices, unsigned reader_device)
{
    system::System sys(tinyConfig(devices));
    auto data = sys.mapDataset("data", 2048, nullptr, reader_device);
    auto *wal = sys.createFile("wal", 4096, 0);

    // Writer: a stream of WAL appends saturating device 0's channels.
    struct Writer : workloads::Workload
    {
        os::File *wal;
        std::uint64_t n = 0;
        explicit Writer(os::File *w) : wal(w) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (n >= 2000)
                return workloads::Op::makeDone();
            return workloads::Op::makeFileWrite(wal, n++, pageSize,
                                                true);
        }
        const char *label() const override { return "writer"; }
    };
    sys.addThread(*sys.makeWorkload<Writer>(wal), 0, *data.as);
    auto *reader = sys.makeWorkload<TouchPages>(data.vma, 400);
    auto *tc = sys.addThread(*reader, 1, *data.as);
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    return tc->faultedOpLatencyUs().mean();
}

} // namespace

TEST(MultiDevice, SecondDeviceIsolatesReadsFromWriteContention)
{
    // The YCSB-A effect in reverse: put the read working set on its
    // own device and the writer's channel occupancy stops inflating
    // read latency.
    double shared = readLatencyUnderWrites(1, 0);
    double isolated = readLatencyUnderWrites(2, 1);
    EXPECT_LT(isolated, shared * 0.85);
}

TEST(MultiDevice, TooManyDevicesRejected)
{
    EXPECT_THROW(system::System sys(tinyConfig(9)), FatalError);
    EXPECT_THROW(system::System sys(tinyConfig(0)), FatalError);
}

TEST(MultiDevice, FileOnUnattachedDeviceRejected)
{
    system::System sys(tinyConfig(1));
    EXPECT_THROW(sys.createFile("x", 64, 3), FatalError);
}

TEST(PerCoreQueues, EachCoreDrawsFromItsOwnQueue)
{
    auto cfg = tinyConfig(1);
    cfg.smu.perCoreFreeQueues = true;
    cfg.smu.nFreeQueues = 4;
    cfg.smu.freeQueueCapacity = 256; // 64 per core
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 4096);

    sys.addThread(*sys.makeWorkload<TouchPages>(mf.vma, 32), 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));

    EXPECT_EQ(sys.smu()->numFreeQueues(), 4u);
    // Core 0's queue was consumed; core 1's untouched.
    EXPECT_EQ(sys.smu()->freePageQueue(0).pops(), 32u);
    EXPECT_EQ(sys.smu()->freePageQueue(1).pops(), 0u);
}

TEST(PerCoreQueues, KpooldRefillsAllQueues)
{
    auto cfg = tinyConfig(1);
    cfg.smu.perCoreFreeQueues = true;
    cfg.smu.nFreeQueues = 4;
    cfg.smu.freeQueueCapacity = 256;
    system::System sys(cfg);
    sys.start();
    for (unsigned q = 0; q < 4; ++q)
        EXPECT_EQ(sys.smu()->freePageQueue(q).size(), 64u) << q;
}

TEST(PerCoreQueues, OneCoreCannotStarveAnother)
{
    // A fault storm on core 0 drains only queue 0; core 1's first
    // miss still succeeds in hardware immediately.
    auto cfg = tinyConfig(1);
    cfg.smu.perCoreFreeQueues = true;
    cfg.smu.nFreeQueues = 4;
    cfg.smu.freeQueueCapacity = 128; // 32 per core: storm drains it
    cfg.kpooldEnabled = true;
    cfg.kpooldPeriod = seconds(1.0); // too slow to mask the storm
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 4096);

    sys.addThread(*sys.makeWorkload<TouchPages>(mf.vma, 200), 0,
                  *mf.as);
    auto *late = sys.makeWorkload<TouchPages>(mf.vma, 1);
    struct Delayed : workloads::Workload
    {
        workloads::Workload *inner;
        bool idled = false;
        explicit Delayed(workloads::Workload *w) : inner(w) {}
        workloads::Op
        next(sim::Rng &rng) override
        {
            if (!idled) {
                idled = true;
                workloads::Op op;
                op.kind = workloads::Op::Kind::idle;
                op.idleTicks = milliseconds(2.0);
                return op;
            }
            return inner->next(rng);
        }
        const char *label() const override { return "delayed"; }
    };
    auto *delayed = sys.makeWorkload<Delayed>(late);
    // Touch a page the storm has not claimed (high end of the file).
    struct OneHigh : workloads::Workload
    {
        os::Vma *vma;
        bool done_ = false;
        explicit OneHigh(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (done_)
                return workloads::Op::makeDone();
            done_ = true;
            return workloads::Op::makeMem(vma->end - pageSize, false,
                                          true);
        }
        const char *label() const override { return "onehigh"; }
    };
    (void)delayed;
    auto *high = sys.makeWorkload<OneHigh>(mf.vma);
    sys.addThread(*high, 1, *mf.as);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
    // Core 0's storm overflowed to OS fallbacks, core 1 stayed pure
    // hardware.
    EXPECT_GT(sys.smu()->rejectedQueueEmpty(), 0u);
    EXPECT_EQ(sys.core(1).mmu().smuRejections(), 0u);
    EXPECT_EQ(sys.core(1).mmu().hwMisses(), 1u);
}

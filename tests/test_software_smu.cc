/**
 * @file
 * Tests for the software-emulated SMU (the real-machine prototype).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig()
{
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::swsmu;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    return cfg;
}

struct OneRead : workloads::Workload
{
    os::Vma *vma;
    VAddr addr;
    bool issued = false;
    OneRead(os::Vma *v, VAddr a) : vma(v), addr(a) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (issued)
            return workloads::Op::makeDone();
        issued = true;
        return workloads::Op::makeMem(addr, false, true);
    }
    const char *label() const override { return "oneread"; }
};

} // namespace

TEST(SoftwareSmu, HandlesLbaFaultWithoutBlockLayer)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    EXPECT_EQ(sys.softwareSmu()->handled(), 1u);
    // The fault trapped (it is a software scheme)...
    EXPECT_EQ(sys.core(0).mmu().osFaults(), 1u);
    // ...but never went through the kernel block layer.
    EXPECT_EQ(sys.kernel().blockLayer().readsSubmitted(), 0u);
    EXPECT_EQ(sys.kernel().majorFaults(), 0u);
    (void)tc;
}

TEST(SoftwareSmu, InstallsHardwareStylePte)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    os::pte::Entry e = mf.as->pageTable().readPte(mf.vma->start);
    EXPECT_TRUE(os::pte::needsMetadataSync(e));
    // OS metadata deferred to kpted, exactly like the hardware.
    Pfn pfn = os::pte::pfnOf(e);
    EXPECT_FALSE(sys.kernel().page(pfn).inPageCache);
}

TEST(SoftwareSmu, MissLatencyBetweenHardwareAndOsdp)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    double us = sys.softwareSmu()->missLatencyUs().mean();
    // Device 10.9 us + ~1-2 us of software; far below OSDP's ~19.5.
    EXPECT_GT(us, 11.0);
    EXPECT_LT(us, 15.0);
    (void)tc;
}

TEST(SoftwareSmu, ConcurrentFaultersCoalesce)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    // Two threads on different cores fault the same page.
    auto *w0 = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    auto *w1 = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start + 128);
    sys.addThread(*w0, 0, *mf.as);
    sys.addThread(*w1, 1, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    // One I/O, both threads resumed.
    EXPECT_EQ(sys.softwareSmu()->handled(), 1u);
    EXPECT_EQ(sys.ssd().readsCompleted(), 1u);
    EXPECT_EQ(sys.totalAppOps(), 2u);
}

TEST(SoftwareSmu, NonLbaFaultsTakeTheNormalPath)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    // Strip the LBA augmentation from one PTE.
    mf.as->pageTable().writePte(mf.vma->start, 0);

    auto *wl = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));
    EXPECT_EQ(sys.softwareSmu()->handled(), 0u);
    EXPECT_EQ(sys.kernel().majorFaults(), 1u);
}

TEST(SoftwareSmu, EmptyQueueFallsThroughToNormalPath)
{
    auto cfg = tinyConfig();
    cfg.kpooldEnabled = false;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<OneRead>(mf.vma, mf.vma->start);
    sys.addThread(*wl, 0, *mf.as);

    sys.kernel().scheduler().start();
    sys.eventQueue().runWhile([&] { return sys.totalAppOps() < 1; },
                              seconds(1.0));
    EXPECT_EQ(sys.softwareSmu()->handled(), 0u);
    EXPECT_EQ(sys.kernel().majorFaults(), 1u);
}

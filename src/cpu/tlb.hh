/**
 * @file
 * Two-level TLB model (per logical core).
 *
 * Geometry approximates the evaluation machine: a 64-entry
 * fully-associative L1 DTLB in front of a 1536-entry 8-way L2 STLB.
 * Only 4 KB translations are modelled (Section V: huge pages are not
 * a first-class feature of the design).
 */

#ifndef HWDP_CPU_TLB_HH
#define HWDP_CPU_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace hwdp::cpu {

class Tlb
{
  public:
    struct Result
    {
        bool hit = false;      ///< Hit in either level.
        bool l1Hit = false;
        Pfn pfn = 0;
    };

    Tlb(unsigned l1_entries = 64, unsigned l2_entries = 1536,
        unsigned l2_assoc = 8);

    Result lookup(VAddr vaddr);

    /** Install a translation in both levels. */
    void insert(VAddr vaddr, Pfn pfn);

    /** Shoot down one translation (both levels). */
    void invalidate(VAddr vaddr);

    /** Full flush (context switch between address spaces). */
    void flush();

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t l1Misses() const { return nL1Miss; }
    std::uint64_t misses() const { return nMiss; }

  private:
    unsigned l1Cap;
    unsigned l2Assoc;
    unsigned l2Sets;

    /** L1: fully associative with LRU via list + map. */
    std::list<std::uint64_t> l1Order; // front = MRU, holds VPNs
    std::unordered_map<std::uint64_t,
                       std::pair<Pfn, std::list<std::uint64_t>::iterator>>
        l1Map;

    struct L2Entry
    {
        std::uint64_t vpn = 0;
        Pfn pfn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<L2Entry> l2;
    std::uint64_t useClock = 0;

    std::uint64_t nLookups = 0;
    std::uint64_t nL1Miss = 0;
    std::uint64_t nMiss = 0;

    void l1Insert(std::uint64_t vpn, Pfn pfn);
    L2Entry *l2Find(std::uint64_t vpn);
    void l2Insert(std::uint64_t vpn, Pfn pfn);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_TLB_HH

#include "core/kpoold.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
Kpoold::serialize(sim::Serializer &s)
{
    s.section("kpoold");
    KThread::serialize(s);
    s.check(maxBatch, "kpoold batch size");
    s.io(nDonated);
    s.io(nOverlapped);
}

Kpoold::Kpoold(os::Kernel &kernel, std::vector<FreePageQueue *> fpqs,
               unsigned core, Tick period, std::uint64_t max_batch)
    : os::KThread("kpoold", core, kernel.scheduler(),
                  kernel.eventQueue(), period),
      kernel(kernel), fpqs(std::move(fpqs)), maxBatch(max_batch)
{
}

void
Kpoold::setSocketTags(std::vector<unsigned> tags)
{
    if (!tags.empty() && tags.size() != fpqs.size())
        fatal("kpoold: ", tags.size(), " socket tags for ", fpqs.size(),
              " queues");
    socketTags = std::move(tags);
}

std::uint64_t
Kpoold::donateTo(FreePageQueue &q, std::uint64_t want, unsigned socket)
{
    std::uint64_t pushed = 0;
    while (pushed < want && q.freeSlots() > 0) {
        // Strictly the queue's home node: a remote frame in a local
        // free-page queue would break the home-socket invariant (and
        // hand the SMU a frame every subsequent access pays the
        // QPI/UPI hop for).
        Pfn pfn = kernel.physMem().allocOnSocket(socket);
        if (pfn == mem::PhysMem::invalidPfn) {
            // Memory pressure: let the reclaimer catch up and retry
            // next period.
            kernel.reclaimer().kick();
            break;
        }
        os::Page &pg = kernel.page(pfn);
        pg.inUse = true;
        pg.inSmuQueue = true;
        q.push(pfn);
        ++pushed;
    }
    nDonated += pushed;
    return pushed;
}

std::uint64_t
Kpoold::donate(std::uint64_t want)
{
    std::uint64_t per_queue = std::max<std::uint64_t>(
        want / fpqs.size(), 1);
    std::uint64_t pushed = 0;
    for (std::size_t qi = 0; qi < fpqs.size(); ++qi)
        pushed += donateTo(*fpqs[qi], per_queue, socketOfQueue(qi));
    return pushed;
}

void
Kpoold::batch(std::function<void()> done)
{
    std::uint64_t pushed = donate(maxBatch);
    unsigned phys = sched.physCoreOf(core());
    Tick dur = sched.kernelExec().runBatch(
        phys, os::phases::kpooldPerPage, pushed);
    eq.postIn(dur, std::move(done), "kpoold.batch");
}

void
Kpoold::prime()
{
    for (std::size_t qi = 0; qi < fpqs.size(); ++qi) {
        donateTo(*fpqs[qi], fpqs[qi]->capacity(), socketOfQueue(qi));
        fpqs[qi]->refillPrefetch();
    }
}

void
Kpoold::refillOverlapped(unsigned faulting_core)
{
    ++nOverlapped;
    // The state change happens immediately; the cycles are charged as
    // kernel work on the faulting core, where they overlap the fault's
    // device I/O time (Section IV-D).
    std::uint64_t pushed = donate(maxBatch);
    if (pushed == 0)
        return;
    std::vector<const os::KernelPhase *> work(
        static_cast<std::size_t>(std::min<std::uint64_t>(pushed, 64)),
        &os::phases::kpooldPerPage);
    sched.queueKernelWork(faulting_core, std::move(work), [] {});
}

} // namespace hwdp::core

/**
 * @file
 * Error-path tests: the SMU bounce paths (PMSHR full, free page queue
 * dry), the retry-once-then-bounce policy on NVMe error completions in
 * both the hardware and software SMU, the block layer's retry loop,
 * and graceful OOM handling instead of a simulator panic. In every
 * case the faulting access must ultimately complete.
 */

#include <gtest/gtest.h>

#include "os/scheduler.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "workloads/fio.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    return cfg;
}

/** Touch @p n pages of a VMA in order (write faults). */
struct TouchAll : workloads::Workload
{
    os::Vma *vma;
    std::uint64_t i = 0;
    std::uint64_t n;
    TouchAll(os::Vma *v, std::uint64_t pages) : vma(v), n(pages) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= n)
            return workloads::Op::makeDone();
        VAddr a = vma->start + (i++ << pageShift);
        return workloads::Op::makeMem(a, true, true);
    }
    const char *label() const override { return "touch"; }
};

} // namespace

TEST(BouncePaths, PmshrFullBouncesToOsAndCompletes)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    ht::FaultPlan plan("plan", sys.eventQueue(), 41);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::pmshrFull).rate = 1.0;
    plan.site(ht::FaultSite::pmshrFull).maxInjections = 8;
    plan.arm(ht::FaultSite::pmshrFull);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(sys.smu()->rejectedPmshrFull(), 8u);
    EXPECT_GE(sys.kernel().smuFallbackFaults(), 8u);
    EXPECT_EQ(sys.totalAppOps(), 1500u);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(BouncePaths, FreePageQueueDryBouncesAndRefills)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    ht::FaultPlan plan("plan", sys.eventQueue(), 43);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::fpqDry).rate = 1.0;
    plan.site(ht::FaultSite::fpqDry).maxInjections = 8;
    plan.arm(ht::FaultSite::fpqDry);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_GE(sys.smu()->rejectedQueueEmpty(), 8u);
    EXPECT_GE(sys.kernel().smuFallbackFaults(), 8u);
    // The OS bounce path triggered the overlapped refill: the queue
    // recovered and the SMU kept handling misses afterwards.
    EXPECT_FALSE(sys.smu()->freePageQueue().empty());
    EXPECT_GT(sys.smu()->handled(), 0u);
    EXPECT_EQ(sys.totalAppOps(), 1500u);
}

TEST(BouncePaths, SmuRetriesSingleNvmeErrorWithoutBounce)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    ht::FaultPlan plan("plan", sys.eventQueue(), 47);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::ssdReadError).rate = 1.0;
    plan.site(ht::FaultSite::ssdReadError).maxInjections = 1;
    plan.arm(ht::FaultSite::ssdReadError);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    // One error, one retry, retry succeeded: no bounce.
    EXPECT_EQ(sys.smu()->ioRetries(), 1u);
    EXPECT_EQ(sys.smu()->rejectedIoError(), 0u);
    EXPECT_EQ(sys.ssd().errorsCompleted(), 1u);
    EXPECT_EQ(sys.totalAppOps(), 1000u);
}

TEST(BouncePaths, SmuBouncesAfterRepeatedNvmeErrors)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    ht::FaultPlan plan("plan", sys.eventQueue(), 53);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::ssdReadError).rate = 1.0;
    plan.site(ht::FaultSite::ssdReadError).maxInjections = 2;
    plan.arm(ht::FaultSite::ssdReadError);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    // First command errored twice: one retry, then the bounce to the
    // OS path, which re-read the page successfully.
    EXPECT_EQ(sys.smu()->ioRetries(), 1u);
    EXPECT_EQ(sys.smu()->rejectedIoError(), 1u);
    EXPECT_GE(sys.kernel().smuFallbackFaults(), 1u);
    EXPECT_EQ(sys.totalAppOps(), 1000u);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(BouncePaths, SoftwareSmuRetriesThenBouncesOnNvmeErrors)
{
    {
        system::System sys(smallConfig(system::PagingMode::swsmu));
        ht::FaultPlan plan("plan", sys.eventQueue(), 59);
        auto mf = sys.mapDataset("f", 16 * 1024);
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
        sys.addThread(*wl, 0, *mf.as);
        plan.attach(sys);
        plan.site(ht::FaultSite::ssdReadError).rate = 1.0;
        plan.site(ht::FaultSite::ssdReadError).maxInjections = 1;
        plan.arm(ht::FaultSite::ssdReadError);

        ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
        EXPECT_EQ(sys.softwareSmu()->ioRetries(), 1u);
        EXPECT_EQ(sys.softwareSmu()->rejectedIoError(), 0u);
        EXPECT_EQ(sys.totalAppOps(), 1000u);
    }
    {
        system::System sys(smallConfig(system::PagingMode::swsmu));
        ht::FaultPlan plan("plan", sys.eventQueue(), 61);
        auto mf = sys.mapDataset("f", 16 * 1024);
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
        sys.addThread(*wl, 0, *mf.as);
        plan.attach(sys);
        plan.site(ht::FaultSite::ssdReadError).rate = 1.0;
        plan.site(ht::FaultSite::ssdReadError).maxInjections = 2;
        plan.arm(ht::FaultSite::ssdReadError);

        ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
        EXPECT_EQ(sys.softwareSmu()->ioRetries(), 1u);
        EXPECT_EQ(sys.softwareSmu()->rejectedIoError(), 1u);
        EXPECT_EQ(sys.totalAppOps(), 1000u);
    }
}

TEST(BouncePaths, SoftwareSmuQueueDryFallsBackToOs)
{
    system::System sys(smallConfig(system::PagingMode::swsmu));
    ht::FaultPlan plan("plan", sys.eventQueue(), 67);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1200);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::fpqDry).rate = 1.0;
    plan.site(ht::FaultSite::fpqDry).maxInjections = 8;
    plan.arm(ht::FaultSite::fpqDry);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_GE(sys.softwareSmu()->queueEmptyBounces(), 8u);
    EXPECT_EQ(sys.totalAppOps(), 1200u);
}

TEST(BouncePaths, BlockLayerRetriesFailedReadsUnderOsdp)
{
    system::System sys(smallConfig(system::PagingMode::osdp));
    ht::FaultPlan plan("plan", sys.eventQueue(), 71);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
    sys.addThread(*wl, 0, *mf.as);
    plan.attach(sys);
    plan.site(ht::FaultSite::ssdReadError).rate = 1.0;
    plan.site(ht::FaultSite::ssdReadError).maxInjections = 3;
    plan.arm(ht::FaultSite::ssdReadError);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(sys.kernel().blockLayer().ioRetries(), 3u);
    EXPECT_EQ(sys.ssd().errorsCompleted(), 3u);
    EXPECT_EQ(sys.totalAppOps(), 1000u);
}

namespace {

/** Two-socket machine; one FIO thread per socket on its local device. */
std::unique_ptr<system::System>
makeNumaSystem(system::PagingMode mode, std::uint64_t ops = 1200)
{
    auto cfg = smallConfig(mode);
    cfg.sockets = 2;
    auto sys = std::make_unique<system::System>(cfg);
    for (unsigned s = 0; s < 2; ++s) {
        auto mf = sys->mapDataset("f" + std::to_string(s), 8 * 1024,
                                  nullptr, s);
        auto *wl =
            sys->makeWorkload<workloads::FioWorkload>(mf.vma, ops);
        sys->addThread(*wl, s * cfg.coresPerSocket(), *mf.as);
    }
    return sys;
}

} // namespace

TEST(BouncePaths, RemoteFpqDryBouncesOnItsOwnSocket)
{
    auto sys = makeNumaSystem(system::PagingMode::hwdp);
    ht::FaultPlan plan("plan", sys->eventQueue(), 73);
    plan.attach(*sys);
    plan.site(ht::FaultSite::remoteFpqDry).rate = 1.0;
    plan.site(ht::FaultSite::remoteFpqDry).maxInjections = 8;
    plan.arm(ht::FaultSite::remoteFpqDry);

    ASSERT_TRUE(sys->runUntilThreadsDone(seconds(30.0)));
    // The injected dry spells hit socket 1's SMU and bounced to the
    // OS there. (Socket 0 may see a few genuine dry pops before
    // kpoold's first refill; only the injected ones are pinned.)
    EXPECT_EQ(plan.injections(ht::FaultSite::remoteFpqDry), 8u);
    EXPECT_EQ(plan.injections(ht::FaultSite::fpqDry), 0u);
    EXPECT_GE(sys->smuAt(1)->rejectedQueueEmpty(), 8u);
    EXPECT_GE(sys->kernel().smuFallbackFaults(), 8u);
    EXPECT_EQ(sys->totalAppOps(), 2400u);
    auto inv = ht::checkInvariants(*sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(BouncePaths, RemotePmshrFullBouncesToOs)
{
    auto sys = makeNumaSystem(system::PagingMode::hwdp);
    ht::FaultPlan plan("plan", sys->eventQueue(), 79);
    plan.attach(*sys);
    plan.site(ht::FaultSite::remotePmshrFull).rate = 1.0;
    plan.site(ht::FaultSite::remotePmshrFull).maxInjections = 8;
    plan.arm(ht::FaultSite::remotePmshrFull);

    ASSERT_TRUE(sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(sys->smuAt(1)->rejectedPmshrFull(), 8u);
    EXPECT_EQ(sys->smuAt(0)->rejectedPmshrFull(), 0u);
    EXPECT_GE(sys->kernel().smuFallbackFaults(), 8u);
    EXPECT_EQ(sys->totalAppOps(), 2400u);
    auto inv = ht::checkInvariants(*sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(BouncePaths, DroppedSyncShootdownsAreAbsorbed)
{
    // Drop EVERY remote PWC invalidation on the kpted sync path. A
    // stale PWC entry there is a performance artifact, never a
    // correctness hole: the run must complete and stay consistent.
    auto sys = makeNumaSystem(system::PagingMode::hwdp);
    ht::FaultPlan plan("plan", sys->eventQueue(), 83);
    plan.attach(*sys);
    plan.site(ht::FaultSite::shootdownDrop).rate = 1.0;
    plan.arm(ht::FaultSite::shootdownDrop);

    ASSERT_TRUE(sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(sys->socketAt(1).shootdownsDropped, 0u);
    EXPECT_EQ(sys->totalAppOps(), 2400u);
    auto inv = ht::checkInvariants(*sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    // Epochs still agree: drops change PWC contents, not the epoch.
    EXPECT_EQ(sys->socketAt(0).shootdownEpoch,
              sys->socketAt(1).shootdownEpoch);
}

TEST(BouncePaths, DelayedSyncShootdownsEventuallyInvalidate)
{
    auto sys = makeNumaSystem(system::PagingMode::hwdp);
    ht::FaultPlan plan("plan", sys->eventQueue(), 89);
    plan.attach(*sys);
    plan.site(ht::FaultSite::shootdownDelay).rate = 1.0;
    plan.arm(ht::FaultSite::shootdownDelay);

    ASSERT_TRUE(sys->runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(sys->socketAt(1).shootdownsDelayed, 0u);
    EXPECT_EQ(sys->totalAppOps(), 2400u);
    auto inv = ht::checkInvariants(*sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(BouncePaths, AnonExhaustionOomKillsThreadInsteadOfPanicking)
{
    auto cfg = smallConfig(system::PagingMode::osdp);
    cfg.memFrames = 1024;
    system::System sys(cfg);
    // Anonymous pages are unevictable (no swap): touching more of
    // them than DRAM holds genuinely exhausts memory.
    auto mf = sys.mapAnon(2048);
    auto *wl = sys.makeWorkload<TouchAll>(mf.vma, 2048);
    auto *tc = sys.addThread(*wl, 0, *mf.as);

    bool done = false;
    EXPECT_NO_THROW(done = sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_TRUE(done);
    EXPECT_TRUE(tc->oomKilled());
    EXPECT_EQ(sys.kernel().oomKills(), 1u);
    // The thread died short of its full workload.
    EXPECT_LT(sys.totalAppOps(), 2048u);
}

#include "cpu/walker.hh"

namespace hwdp::cpu {

Walker::Walker(mem::CacheHierarchy &caches, unsigned phys_core,
               Tick cycle_period)
    : caches(caches), physCore(phys_core), period(cycle_period)
{
}

Walker::Outcome
Walker::walk(os::AddressSpace &as, VAddr vaddr)
{
    ++nWalks;
    Outcome out;

    os::WalkRefs refs = as.pageTable().walkRefs(vaddr, false);
    out.refs = refs;

    // Root access (PGD entry) is effectively always cached; charge the
    // three lower-level entry reads through the hierarchy. Walker
    // traffic is attributed to user mode: it exists identically under
    // OSDP and HWDP and is not OS pollution.
    Cycles cycles = 0;
    for (const os::EntryRef *r : {&refs.pud, &refs.pmd, &refs.pte}) {
        if (!r->valid())
            break;
        cycles += caches.access(physCore, r->addr, false,
                                ExecMode::user).latency;
    }
    out.latency = cycles * period;

    if (!refs.pte.valid()) {
        out.kind = Classification::osFault;
        return out;
    }

    os::pte::Entry e = refs.pte.value();
    out.entry = e;
    if (os::pte::isPresent(e)) {
        // Hardware A-bit update on translation.
        if (!os::pte::isAccessed(e))
            refs.pte.write(e | os::pte::accessedBit);
        out.kind = Classification::present;
    } else if (os::pte::hasLbaBit(e)) {
        out.kind = Classification::hwMiss;
    } else {
        out.kind = Classification::osFault;
    }
    return out;
}

} // namespace hwdp::cpu

/**
 * @file
 * Tests for the system builder and machine-level wiring.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    return cfg;
}

} // namespace

TEST(System, OsdpModeHasNoHwdpMachinery)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    EXPECT_EQ(sys.smu(), nullptr);
    EXPECT_EQ(sys.softwareSmu(), nullptr);
    EXPECT_EQ(sys.kpted(), nullptr);
    EXPECT_EQ(sys.kpoold(), nullptr);
    EXPECT_EQ(sys.freePageQueue(), nullptr);
}

TEST(System, HwdpModeBuildsSmuAndKthreads)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    EXPECT_NE(sys.smu(), nullptr);
    EXPECT_EQ(sys.softwareSmu(), nullptr);
    EXPECT_NE(sys.kpted(), nullptr);
    EXPECT_NE(sys.kpoold(), nullptr);
    EXPECT_EQ(sys.freePageQueue(), &sys.smu()->freePageQueue());
}

TEST(System, SwSmuModeBuildsEmulation)
{
    system::System sys(tinyConfig(system::PagingMode::swsmu));
    EXPECT_EQ(sys.smu(), nullptr);
    EXPECT_NE(sys.softwareSmu(), nullptr);
    EXPECT_NE(sys.kpted(), nullptr);
    EXPECT_NE(sys.freePageQueue(), nullptr);
}

TEST(System, MapDatasetRegistersFastVma)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 64);
    ASSERT_NE(sys.hwdpSupport(), nullptr);
    ASSERT_EQ(sys.hwdpSupport()->fastVmas().size(), 1u);
    EXPECT_EQ(sys.hwdpSupport()->fastVmas()[0].vma, mf.vma);
    EXPECT_TRUE(mf.vma->fastMmap);
}

TEST(System, MapDatasetPlainUnderOsdp)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    EXPECT_FALSE(mf.vma->fastMmap);
}

TEST(System, PreloadInstallsResidentPages)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    sys.preload(mf);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(os::pte::isPresent(mf.as->pageTable().readPte(
            mf.vma->start + i * pageSize)));
    }
    EXPECT_EQ(sys.physMem().allocatedFrames(), 64u);
}

TEST(System, StartTwicePanics)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    sys.start();
    EXPECT_THROW(sys.start(), PanicError);
}

TEST(System, RunForAdvancesTime)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    Tick t0 = sys.now();
    sys.runFor(milliseconds(2.0));
    EXPECT_GE(sys.now(), t0 + milliseconds(1.9));
}

TEST(System, StopKthreadsLetsQueueDrain)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    sys.start();
    sys.runFor(milliseconds(2.0));
    sys.stopKthreads();
    // With the periodic timers gone the queue empties.
    sys.eventQueue().run();
    EXPECT_TRUE(sys.eventQueue().empty());
}

TEST(System, ThroughputAccountsAllThreads)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 4096);
    for (unsigned t = 0; t < 2; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 100);
        sys.addThread(*wl, t, *mf.as);
    }
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(5.0)));
    EXPECT_EQ(sys.totalAppOps(), 200u);
    EXPECT_GT(sys.throughputOpsPerSec(), 0.0);
    EXPECT_GT(sys.aggregateUserIpc(), 0.0);
}

TEST(System, TickLimitReportsFailure)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 4096);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 100000);
    sys.addThread(*wl, 0, *mf.as);
    EXPECT_FALSE(sys.runUntilThreadsDone(microseconds(100.0)));
}

TEST(System, ConfigDescribeMentionsKeyParameters)
{
    auto cfg = tinyConfig(system::PagingMode::hwdp);
    std::string desc = cfg.describe();
    EXPECT_NE(desc.find("HWDP"), std::string::npos);
    EXPECT_NE(desc.find("PMSHR"), std::string::npos);
    EXPECT_NE(desc.find("zssd"), std::string::npos);
}

TEST(System, PagingModeNames)
{
    EXPECT_STREQ(system::pagingModeName(system::PagingMode::osdp),
                 "OSDP");
    EXPECT_STREQ(system::pagingModeName(system::PagingMode::hwdp),
                 "HWDP");
    EXPECT_STREQ(system::pagingModeName(system::PagingMode::swsmu),
                 "SW-only");
}
